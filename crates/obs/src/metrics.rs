//! Monotonic counters and log₂-bucket histograms.
//!
//! Both are lock-free: an increment is one relaxed atomic op (preceded by
//! the global enabled check). Hot loops should accumulate locally and call
//! [`Counter::add`] once per batch — the model search does this for its
//! per-fold LOO-CV counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonic counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

/// One counter reading inside a [`crate::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterValue {
    pub name: &'static str,
    pub value: u64,
}

impl Counter {
    pub(crate) fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n`; a no-op (one atomic load) while recording is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::registry::is_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1; a no-op while recording is disabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Returns the current value and resets to zero.
    pub(crate) fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket `i` holds values with bit length `i`
/// (bucket 0 is exactly zero), so the range covers the full `u64` span.
const BUCKETS: usize = 65;

/// A named histogram over `u64` samples (typically nanoseconds) with log₂
/// buckets: cheap concurrent recording, quantiles within a factor of two.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    pub name: &'static str,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// Median (upper bucket bound — an overestimate of at most 2×).
    pub p50: u64,
    /// 95th percentile (upper bucket bound).
    pub p95: u64,
}

fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Upper bound of a bucket: the largest value whose bit length is `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    pub(crate) fn new(name: &'static str) -> Self {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample; a no-op (one atomic load) while disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::registry::is_enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// containing it; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            name: self.name,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
        }
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::LOCK as TEST_LOCK;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let _l = TEST_LOCK.lock();
        let h = Histogram::new("test.h");
        crate::registry::set_enabled(true);
        for v in [1u64, 2, 3, 10, 100, 1000, 10_000] {
            h.record(v);
        }
        crate::registry::set_enabled(false);
        let s = h.summary();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 11_116);
        assert_eq!(s.max, 10_000);
        // p50 falls in the bucket containing the 4th sample (10): [8, 15].
        assert!(s.p50 >= 10 && s.p50 <= 15, "p50 = {}", s.p50);
        // p95 lands in the top bucket, clamped to the observed max.
        assert!(s.p95 >= 10_000 && s.p95 <= 16_383, "p95 = {}", s.p95);
    }

    #[test]
    fn disabled_counter_and_histogram_do_not_move() {
        let _l = TEST_LOCK.lock();
        crate::registry::set_enabled(false);
        let c = Counter::new("test.c");
        c.add(5);
        c.incr();
        assert_eq!(c.get(), 0);
        let h = Histogram::new("test.h2");
        h.record(9);
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn counter_take_resets() {
        let _l = TEST_LOCK.lock();
        let c = Counter::new("test.take");
        crate::registry::set_enabled(true);
        c.add(7);
        crate::registry::set_enabled(false);
        assert_eq!(c.take(), 7);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new("test.empty");
        assert_eq!(h.quantile(0.5), 0);
    }
}
