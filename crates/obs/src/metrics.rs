//! Monotonic counters and log₂-bucket histograms.
//!
//! Both are lock-free: an increment is one relaxed atomic op (preceded by
//! the global enabled check). Hot loops should accumulate locally and call
//! [`Counter::add`] once per batch — the model search does this for its
//! per-fold LOO-CV counters.
//!
//! Snapshot-time readings ([`CounterValue`], [`HistogramSummary`]) carry
//! owned names and, for histograms, the sparse log₂ bucket vector, so they
//! can be serialized into the telemetry stream, parsed back in another
//! process, and **merged**: [`HistogramSummary::merge`] sums buckets and
//! recomputes the quantiles, which is what makes per-interval snapshots and
//! per-process exports composable into fleet-level totals.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonic counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

/// One counter reading inside a [`crate::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterValue {
    pub name: String,
    pub value: u64,
}

impl Counter {
    pub(crate) fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n`; a no-op (one atomic load) while recording is disabled.
    ///
    /// Deliberately never touches the flight-recorder journal: counters are
    /// incremented from the hottest loops (per hypothesis, per LOO-CV fold),
    /// and per-increment journaling both swamps the ring and taxes the
    /// workload. The sampler instead reads the cumulative values each tick
    /// ([`crate::registry::counter_values`]) and emits one coalesced delta
    /// record per changed counter per interval.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::registry::is_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1; a no-op while recording is disabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Returns the current value and resets to zero.
    pub(crate) fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket `i` holds values with bit length `i`
/// (bucket 0 is exactly zero), so the range covers the full `u64` span.
const BUCKETS: usize = 65;

/// A named histogram over `u64` samples (typically nanoseconds) with log₂
/// buckets: cheap concurrent recording, quantiles within a factor of two.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// Point-in-time summary of a [`Histogram`].
///
/// Carries the sparse bucket counts, so summaries from different snapshots
/// (or different processes, via the telemetry stream) can be merged without
/// access to the live histogram; quantiles are recomputed from the merged
/// buckets and stay within one log₂ bucket of the true value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// Median (upper bucket bound — an overestimate of at most 2×).
    pub p50: u64,
    /// 95th percentile (upper bucket bound).
    pub p95: u64,
    /// Sparse log₂ buckets as `(bit-length index, count)`, ascending index,
    /// zero counts omitted.
    pub buckets: Vec<(u32, u64)>,
}

pub(crate) fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Upper bound of a log₂ bucket: the largest value whose bit length is `i`.
/// These boundaries are fixed by construction, which is what makes bucket
/// vectors from different processes line up for merging.
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl HistogramSummary {
    /// An empty summary (identity element for [`merge`](Self::merge)).
    pub fn empty(name: impl Into<String>) -> Self {
        HistogramSummary {
            name: name.into(),
            count: 0,
            sum: 0,
            max: 0,
            p50: 0,
            p95: 0,
            buckets: Vec::new(),
        }
    }

    /// Builds a summary directly from raw samples (test and ingestion
    /// convenience; the live path records into [`Histogram`] atomics).
    pub fn from_samples(name: impl Into<String>, samples: &[u64]) -> Self {
        let mut s = Self::empty(name);
        for &v in samples {
            s.count += 1;
            s.sum = s.sum.saturating_add(v);
            s.max = s.max.max(v);
            let idx = bucket_index(v) as u32;
            match s.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => s.buckets[pos].1 += 1,
                Err(pos) => s.buckets.insert(pos, (idx, 1)),
            }
        }
        s.recompute_quantiles();
        s
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) from the bucket counts: the upper
    /// bound of the containing bucket, clamped to the observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return bucket_upper(i as usize).min(self.max);
            }
        }
        self.max
    }

    /// Merges another summary into this one: bucket-wise sums, then
    /// recomputed quantiles. Merging is associative and commutative, so
    /// per-interval snapshots and per-process exports roll up in any order.
    pub fn merge(&mut self, other: &HistogramSummary) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for &(i, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&i, |&(j, _)| j) {
                Ok(pos) => self.buckets[pos].1 += c,
                Err(pos) => self.buckets.insert(pos, (i, c)),
            }
        }
        self.recompute_quantiles();
    }

    fn recompute_quantiles(&mut self) {
        self.p50 = self.quantile(0.50);
        self.p95 = self.quantile(0.95);
    }
}

impl Histogram {
    pub(crate) fn new(name: &'static str) -> Self {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample; a no-op (one atomic load) while disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::registry::is_enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a (possibly remote) summary into this live histogram:
    /// bucket-wise atomic adds. Unlike [`record`](Self::record) this is not
    /// gated on the enabled flag — it is an ingestion path (e.g. replaying a
    /// telemetry stream into a live registry), not instrumentation.
    pub fn absorb(&self, s: &HistogramSummary) {
        self.count.fetch_add(s.count, Ordering::Relaxed);
        self.sum.fetch_add(s.sum, Ordering::Relaxed);
        self.max.fetch_max(s.max, Ordering::Relaxed);
        for &(i, c) in &s.buckets {
            if let Some(b) = self.buckets.get(i as usize) {
                b.fetch_add(c, Ordering::Relaxed);
            }
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// containing it; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    pub fn summary(&self) -> HistogramSummary {
        let mut s = HistogramSummary::empty(self.name);
        s.count = self.count.load(Ordering::Relaxed);
        s.sum = self.sum.load(Ordering::Relaxed);
        s.max = self.max.load(Ordering::Relaxed);
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                s.buckets.push((i as u32, c));
            }
        }
        s.recompute_quantiles();
        s
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::LOCK as TEST_LOCK;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let _l = TEST_LOCK.lock();
        let h = Histogram::new("test.h");
        crate::registry::set_enabled(true);
        for v in [1u64, 2, 3, 10, 100, 1000, 10_000] {
            h.record(v);
        }
        crate::registry::set_enabled(false);
        let s = h.summary();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 11_116);
        assert_eq!(s.max, 10_000);
        // p50 falls in the bucket containing the 4th sample (10): [8, 15].
        assert!(s.p50 >= 10 && s.p50 <= 15, "p50 = {}", s.p50);
        // p95 lands in the top bucket, clamped to the observed max.
        assert!(s.p95 >= 10_000 && s.p95 <= 16_383, "p95 = {}", s.p95);
        // The sparse buckets account for every sample.
        assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 7);
    }

    #[test]
    fn summary_from_samples_matches_live_recording() {
        let _l = TEST_LOCK.lock();
        let samples = [0u64, 1, 5, 9, 31, 700, 700, 4096];
        let h = Histogram::new("test.eq");
        crate::registry::set_enabled(true);
        for &v in &samples {
            h.record(v);
        }
        crate::registry::set_enabled(false);
        let live = h.summary();
        let direct = HistogramSummary::from_samples("test.eq", &samples);
        assert_eq!(live, direct);
    }

    #[test]
    fn merged_summaries_equal_concatenated_recording() {
        let a = HistogramSummary::from_samples("m", &[1, 2, 3, 900]);
        let b = HistogramSummary::from_samples("m", &[0, 64, 900, 40_000]);
        let mut merged = a.clone();
        merged.merge(&b);
        let together = HistogramSummary::from_samples("m", &[1, 2, 3, 900, 0, 64, 900, 40_000]);
        assert_eq!(merged, together);
    }

    #[test]
    fn absorb_folds_a_summary_into_a_live_histogram() {
        let _l = TEST_LOCK.lock();
        let h = Histogram::new("test.absorb");
        crate::registry::set_enabled(true);
        h.record(4);
        crate::registry::set_enabled(false);
        let remote = HistogramSummary::from_samples("remote", &[100, 200]);
        h.absorb(&remote);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 304);
        assert_eq!(s.max, 200);
    }

    #[test]
    fn disabled_counter_and_histogram_do_not_move() {
        let _l = TEST_LOCK.lock();
        crate::registry::set_enabled(false);
        let c = Counter::new("test.c");
        c.add(5);
        c.incr();
        assert_eq!(c.get(), 0);
        let h = Histogram::new("test.h2");
        h.record(9);
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn counter_take_resets() {
        let _l = TEST_LOCK.lock();
        let c = Counter::new("test.take");
        crate::registry::set_enabled(true);
        c.add(7);
        crate::registry::set_enabled(false);
        assert_eq!(c.take(), 7);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new("test.empty");
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(HistogramSummary::empty("e").quantile(0.5), 0);
    }
}
