//! # extradeep-obs
//!
//! The pipeline's *self*-profiling runtime. Extra-Deep consumes Nsight-like
//! event streams to model other programs; this crate gives the pipeline the
//! same treatment, so "how long did the hypothesis search take, and how does
//! it scale?" is a measurement rather than a guess.
//!
//! Design goals, in order:
//!
//! 1. **Near-zero cost when disabled.** Instrumentation is compiled in but
//!    gated on one global flag; a disabled [`span`] or [`Counter::add`] is a
//!    single relaxed atomic load and nothing else. The pipeline's Criterion
//!    benches budget < 5 % overhead for the *enabled* case and ~0 for the
//!    disabled one.
//! 2. **Correct under rayon.** Spans keep a thread-local stack, so the
//!    fork/join parallelism of the search engine and the simulator produces
//!    properly nested per-thread span trees with no cross-thread locking on
//!    the hot path beyond one uncontended buffer mutex per span end.
//! 3. **No external tracing dependencies.** Everything here is std +
//!    `parking_lot`; exporters emit plain strings.
//!
//! ## Surface
//!
//! - [`span`] — RAII span guard; records wall time on drop.
//! - [`counter`] / [`histogram`] — named monotonic counters and log₂-bucket
//!   histograms (p50/p95/max), registered once and shared.
//! - [`snapshot`] / [`drain`] / [`reset`] — collect recorded data; `drain`
//!   clears span buffers and zeroes counters/histograms for the next run.
//! - [`chrome_trace_json`] — Chrome trace-event JSON (`chrome://tracing`,
//!   [Perfetto](https://ui.perfetto.dev)) with matched B/E pairs per thread;
//!   [`chrome_trace_json_with_counters`] adds counter time series.
//! - [`phase_report`] — a human-readable per-phase table.
//! - [`log`] — leveled stderr logging (`error!`/`warn!`/`info!`/`debug!`),
//!   independent of the span machinery.
//!
//! ## Live telemetry
//!
//! Beyond the end-of-run snapshot, the crate can stream while running:
//!
//! - [`journal`] — a lock-free bounded flight recorder; with
//!   [`enable_journal`] every span edge, counter delta, and log line is also
//!   queued as a [`journal::JournalEvent`] (drops counted, never blocks).
//! - [`sampler`] — a background thread draining the journal every interval,
//!   sampling RSS/CPU/threads from `/proc/self`, and writing JSON-Lines
//!   telemetry records through [`export::TelemetryWriter`].
//! - [`watchdog`] — flags spans open past a budget (`warn!` +
//!   `obs.watchdog.stalls`) while the process is still running.
//! - [`export::prometheus_text`] — Prometheus text exposition of a
//!   snapshot, with merge-safe log₂ histogram buckets.
//!
//! ## Example
//!
//! ```
//! extradeep_obs::set_enabled(true);
//! {
//!     let _outer = extradeep_obs::span("demo.outer");
//!     let _inner = extradeep_obs::span("demo.inner");
//!     extradeep_obs::counter("demo.items").add(3);
//! }
//! let snap = extradeep_obs::drain();
//! extradeep_obs::set_enabled(false);
//! assert!(snap.spans.iter().any(|s| s.name == "demo.outer"));
//! let json = extradeep_obs::chrome_trace_json(&snap);
//! assert!(json.contains("\"ph\":\"B\""));
//! ```
//!
//! Span names follow the convention `<crate>.<phase>[.<detail>]`; the text
//! before the first `.` becomes the Chrome trace category, which is how the
//! self-trace converter in `extradeep::selfprofile` attributes spans back to
//! pipeline stages.

pub mod chrome;
pub mod export;
pub mod journal;
pub mod log;
pub mod metrics;
mod registry;
pub mod report;
pub mod sampler;
mod span;
pub mod watchdog;

pub use chrome::{chrome_trace_json, chrome_trace_json_with_counters, CounterSample};
pub use export::{prometheus_text, snapshot_json, TelemetryWriter};
pub use journal::JournalEvent;
pub use metrics::{Counter, CounterValue, Histogram, HistogramSummary};
pub use registry::{
    counter, disable, disable_journal, drain, enable, enable_journal, histogram, is_enabled,
    journal_drain, journal_dropped, journal_enabled, now_ns, reset, set_enabled, snapshot,
    take_new_spans, Snapshot,
};
pub use report::phase_report;
pub use sampler::{sample_resources, ResourceSample, SamplerConfig, SamplerHandle, SamplerReport};
pub use span::{span, SpanGuard, SpanRecord};
pub use watchdog::{Stall, Watchdog};

/// Unit tests flip the global enabled flag; they serialize on this lock so
/// the parallel test harness cannot interleave enable/drain cycles.
#[cfg(test)]
pub(crate) mod testutil {
    pub(crate) static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
}
