//! Stall watchdog: flags spans that stay open past a budget.
//!
//! The watchdog replays the flight-recorder journal's span begin/end edges
//! to track which spans are currently open on each thread, and on every
//! sampler tick flags open spans whose active time exceeds the budget. A
//! hung simulation or model-search phase therefore produces a `warn!` line,
//! a `stall` telemetry record, and an `obs.watchdog.stalls` counter bump
//! while it is *still running* — instead of a silent hang with nothing in
//! the end-of-run report.
//!
//! Each span instance is flagged at most once; the journal is lossy under
//! backpressure, so after observed drops the open-span table is cleared
//! (ghost entries whose end edge was dropped would otherwise stall forever).

use crate::journal::JournalEvent;
use std::collections::BTreeMap;

/// One flagged stall: `name` has been open `active_ns` on thread `tid` at
/// check time `t_ns`, exceeding `budget_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stall {
    pub name: &'static str,
    pub tid: u64,
    pub t_ns: u64,
    pub active_ns: u64,
    pub budget_ns: u64,
}

struct OpenSpan {
    name: &'static str,
    start_ns: u64,
    flagged: bool,
}

/// Tracks open spans from journal events and reports budget overruns.
pub struct Watchdog {
    budget_ns: u64,
    /// Open spans keyed by `(tid, depth)` — the per-thread stack discipline
    /// makes that pair unique among simultaneously open spans.
    open: BTreeMap<(u64, u32), OpenSpan>,
}

impl Watchdog {
    pub fn new(budget_ns: u64) -> Self {
        Watchdog {
            budget_ns,
            open: BTreeMap::new(),
        }
    }

    pub fn budget_ns(&self) -> u64 {
        self.budget_ns
    }

    /// Number of spans currently believed open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Feeds one journal event through the open-span tracker. Counter and
    /// log events are ignored.
    pub fn observe(&mut self, ev: &JournalEvent) {
        match *ev {
            JournalEvent::SpanBegin {
                name,
                tid,
                depth,
                t_ns,
            } => {
                self.open.insert(
                    (tid, depth),
                    OpenSpan {
                        name,
                        start_ns: t_ns,
                        flagged: false,
                    },
                );
            }
            JournalEvent::SpanEnd { tid, depth, .. } => {
                self.open.remove(&(tid, depth));
            }
            JournalEvent::CounterAdd { .. } | JournalEvent::Log { .. } => {}
        }
    }

    /// Flags every open span whose active time at `now_ns` exceeds the
    /// budget and has not been flagged before. Call once per sampler tick.
    pub fn check(&mut self, now_ns: u64) -> Vec<Stall> {
        let mut stalls = Vec::new();
        for (&(tid, _), span) in self.open.iter_mut() {
            let active_ns = now_ns.saturating_sub(span.start_ns);
            if !span.flagged && active_ns > self.budget_ns {
                span.flagged = true;
                stalls.push(Stall {
                    name: span.name,
                    tid,
                    t_ns: now_ns,
                    active_ns,
                    budget_ns: self.budget_ns,
                });
            }
        }
        stalls
    }

    /// Forgets all open spans. Called after the journal reports drops: a
    /// dropped end edge would leave a ghost entry that stalls forever.
    pub fn clear(&mut self) {
        self.open.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(name: &'static str, tid: u64, depth: u32, t_ns: u64) -> JournalEvent {
        JournalEvent::SpanBegin {
            name,
            tid,
            depth,
            t_ns,
        }
    }

    fn end(name: &'static str, tid: u64, depth: u32, t_ns: u64, dur_ns: u64) -> JournalEvent {
        JournalEvent::SpanEnd {
            name,
            tid,
            depth,
            t_ns,
            dur_ns,
        }
    }

    #[test]
    fn closed_spans_never_stall() {
        let mut w = Watchdog::new(1_000);
        w.observe(&begin("sim.run", 0, 0, 0));
        w.observe(&end("sim.run", 0, 0, 500, 500));
        assert!(w.check(10_000).is_empty());
        assert_eq!(w.open_count(), 0);
    }

    #[test]
    fn overbudget_open_span_is_flagged_exactly_once() {
        let mut w = Watchdog::new(1_000);
        w.observe(&begin("model.search", 3, 0, 100));
        assert!(w.check(900).is_empty(), "within budget");
        let stalls = w.check(2_000);
        assert_eq!(
            stalls,
            vec![Stall {
                name: "model.search",
                tid: 3,
                t_ns: 2_000,
                active_ns: 1_900,
                budget_ns: 1_000,
            }]
        );
        // Still open and still over budget, but already flagged.
        assert!(w.check(5_000).is_empty());
        // A fresh instance of the same span can stall again.
        w.observe(&end("model.search", 3, 0, 5_500, 5_400));
        w.observe(&begin("model.search", 3, 0, 6_000));
        assert_eq!(w.check(10_000).len(), 1);
    }

    #[test]
    fn nested_spans_stall_independently() {
        let mut w = Watchdog::new(1_000);
        w.observe(&begin("core.pipeline", 0, 0, 0));
        w.observe(&begin("sim.replay", 0, 1, 200));
        let stalls = w.check(3_000);
        assert_eq!(stalls.len(), 2);
        // Child end clears only the child.
        w.observe(&end("sim.replay", 0, 1, 3_500, 3_300));
        assert_eq!(w.open_count(), 1);
    }

    #[test]
    fn clear_drops_ghosts_after_journal_loss() {
        let mut w = Watchdog::new(1_000);
        w.observe(&begin("agg.join", 1, 0, 0));
        w.clear();
        assert_eq!(w.open_count(), 0);
        assert!(w.check(1_000_000).is_empty());
    }
}
