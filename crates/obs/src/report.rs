//! Human-readable per-phase report.
//!
//! Aggregates a [`Snapshot`] by span name into a fixed-width table of
//! count / total / mean / p50 / p95 / max wall times, followed by counter
//! and histogram readings. Quantiles here are exact (computed from the full
//! duration list), unlike the log₂-bucket [`crate::Histogram`] ones.

use crate::registry::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a per-phase wall-time table plus counters and histograms.
pub fn phase_report(snap: &Snapshot) -> String {
    let mut by_name: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for s in &snap.spans {
        by_name.entry(s.name.as_ref()).or_default().push(s.dur_ns);
    }

    let mut out = String::new();
    out.push_str("self-profile: phase report\n");
    out.push_str("==========================\n");
    if by_name.is_empty() {
        out.push_str("(no spans recorded)\n");
    } else {
        let name_w = by_name
            .keys()
            .map(|n| n.len())
            .max()
            .unwrap_or(4)
            .max("span".len());
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>7}  {:>12}  {:>10}  {:>10}  {:>10}  {:>10}",
            "span", "count", "total ms", "mean ms", "p50 ms", "p95 ms", "max ms"
        );
        // Sort by total time descending so the expensive phases lead.
        let mut rows: Vec<(&str, Vec<u64>)> = by_name.into_iter().collect();
        rows.sort_by_key(|(_, durs)| std::cmp::Reverse(durs.iter().sum::<u64>()));
        for (name, mut durs) in rows {
            durs.sort_unstable();
            let count = durs.len();
            let total: u64 = durs.iter().sum();
            let mean = total as f64 / count as f64;
            let p50 = exact_quantile(&durs, 0.50);
            let p95 = exact_quantile(&durs, 0.95);
            let max = *durs.last().unwrap();
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>7}  {:>12.3}  {:>10.3}  {:>10.3}  {:>10.3}  {:>10.3}",
                name,
                count,
                ms(total),
                mean / 1e6,
                ms(p50),
                ms(p95),
                ms(max)
            );
        }
    }

    if !snap.counters.is_empty() {
        out.push_str("\ncounters\n--------\n");
        let name_w = snap
            .counters
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(4);
        for c in &snap.counters {
            let _ = writeln!(out, "{:<name_w$}  {}", c.name, c.value);
        }
    }

    if !snap.histograms.is_empty() {
        out.push_str("\nhistograms\n----------\n");
        let name_w = snap
            .histograms
            .iter()
            .map(|h| h.name.len())
            .max()
            .unwrap_or(4);
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>10}  {:>12}  {:>10}  {:>10}  {:>10}",
            "name", "count", "sum", "p50", "p95", "max"
        );
        for h in &snap.histograms {
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>10}  {:>12}  {:>10}  {:>10}  {:>10}",
                h.name, h.count, h.sum, h.p50, h.p95, h.max
            );
        }
    }

    out
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Exact quantile over sorted data: the value at the ceil(q·n)-th sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecord;

    #[test]
    fn exact_quantile_picks_order_statistics() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(exact_quantile(&data, 0.50), 5);
        assert_eq!(exact_quantile(&data, 0.95), 10);
        assert_eq!(exact_quantile(&data, 0.0), 1);
        assert_eq!(exact_quantile(&[], 0.5), 0);
    }

    #[test]
    fn report_lists_phases_by_total_time() {
        let snap = Snapshot {
            spans: vec![
                SpanRecord {
                    name: "a.cheap".into(),
                    start_ns: 0,
                    dur_ns: 1_000_000,
                    tid: 0,
                    depth: 0,
                },
                SpanRecord {
                    name: "b.dear".into(),
                    start_ns: 0,
                    dur_ns: 9_000_000,
                    tid: 0,
                    depth: 0,
                },
            ],
            ..Default::default()
        };
        let rep = phase_report(&snap);
        let dear = rep.find("b.dear").unwrap();
        let cheap = rep.find("a.cheap").unwrap();
        assert!(dear < cheap, "most expensive phase should lead:\n{rep}");
        assert!(rep.contains("total ms"));
    }

    #[test]
    fn empty_snapshot_reports_no_spans() {
        let rep = phase_report(&Snapshot::default());
        assert!(rep.contains("no spans recorded"));
    }
}
