//! The background telemetry sampler.
//!
//! One thread, started with [`start`], that every `interval`:
//!
//! 1. drains the flight-recorder journal and streams each event to the
//!    telemetry sink (span edges, log lines), then reads the cumulative
//!    counters and writes one coalesced delta record per changed counter —
//!    increments themselves never touch the journal;
//! 2. feeds the events through the [`crate::watchdog`] and flags spans that
//!    have been open past their budget;
//! 3. reads RSS / CPU time / thread count from `/proc/self`;
//! 4. moves newly finished spans out of the registry
//!    ([`crate::registry::take_new_spans`] — the cumulative end-of-run
//!    snapshot still includes them) and writes a periodic `snapshot` record
//!    with cumulative counters/histograms;
//! 5. flushes, so a follower on the file sees at most one interval of lag.
//!
//! The sampler is the journal's only consumer; instrumented threads never
//! block on it (a full journal drops events and counts the drops). On
//! [`SamplerHandle::stop`] the thread runs one final tick so nothing
//! recorded before the stop is lost, then the journal is torn down.

use crate::chrome::CounterSample;
use crate::export::TelemetryWriter;
use crate::journal::JournalEvent;
use crate::registry;
use crate::watchdog::Watchdog;
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// One `/proc/self` reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceSample {
    /// Capture time, nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Resident set size in bytes (`VmRSS`).
    pub rss_bytes: u64,
    /// Cumulative user-mode CPU time, nanoseconds (`utime`).
    pub cpu_user_ns: u64,
    /// Cumulative kernel-mode CPU time, nanoseconds (`stime`).
    pub cpu_system_ns: u64,
    /// Current thread count.
    pub threads: u64,
}

/// Reads the current process's RSS, CPU time, and thread count. On
/// non-Linux targets everything but the timestamp is zero — the telemetry
/// stream stays well-formed, just without resource data.
pub fn sample_resources() -> ResourceSample {
    let mut s = ResourceSample {
        t_ns: registry::now_ns(),
        ..ResourceSample::default()
    };
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmRSS:") {
                    s.rss_bytes = parse_kb(rest).unwrap_or(0) * 1024;
                } else if let Some(rest) = line.strip_prefix("Threads:") {
                    s.threads = rest.trim().parse().unwrap_or(0);
                }
            }
        }
        if let Ok(stat) = std::fs::read_to_string("/proc/self/stat") {
            // Fields 14/15 (utime, stime) counted from 1; the comm field can
            // contain spaces, so index from after the closing paren.
            if let Some(rest) = stat.rsplit_once(')').map(|(_, r)| r) {
                let fields: Vec<&str> = rest.split_whitespace().collect();
                // After ')' the next field is state (offset 0), so utime and
                // stime land at offsets 11 and 12.
                let ticks = |i: usize| fields.get(i).and_then(|f| f.parse::<u64>().ok());
                // USER_HZ is 100 on every Linux ABI we target.
                const NS_PER_TICK: u64 = 10_000_000;
                s.cpu_user_ns = ticks(11).unwrap_or(0) * NS_PER_TICK;
                s.cpu_system_ns = ticks(12).unwrap_or(0) * NS_PER_TICK;
            }
        }
    }
    s
}

#[cfg(target_os = "linux")]
fn parse_kb(rest: &str) -> Option<u64> {
    rest.trim().strip_suffix("kB")?.trim().parse().ok()
}

/// Sampler configuration. `Default`: 500 ms interval, 64 Ki-event journal,
/// no span budget (watchdog off).
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Tick interval.
    pub interval: Duration,
    /// Flight-recorder capacity in events (rounded up to a power of two).
    pub journal_capacity: usize,
    /// Span budget for the watchdog; `None` disables stall detection.
    pub span_budget: Option<Duration>,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            interval: Duration::from_millis(500),
            journal_capacity: 64 * 1024,
            span_budget: None,
        }
    }
}

/// What the sampler did over its lifetime, returned by
/// [`SamplerHandle::stop`].
#[derive(Debug, Clone, Default)]
pub struct SamplerReport {
    /// Ticks executed (including the final stop tick).
    pub ticks: u64,
    /// Periodic `snapshot` records written.
    pub snapshots_emitted: u64,
    /// Watchdog stalls flagged.
    pub stalls: u64,
    /// Journal events lost to backpressure.
    pub journal_dropped: u64,
    /// Telemetry records written to the sink.
    pub records_written: u64,
    /// Write errors swallowed (telemetry is best-effort; the pipeline never
    /// fails because its telemetry sink did).
    pub io_errors: u64,
    /// Cumulative counter time series reconstructed from journal deltas —
    /// feed to [`crate::chrome::chrome_trace_json_with_counters`].
    pub counter_series: Vec<CounterSample>,
}

struct Shared {
    stop: Mutex<bool>,
    cv: Condvar,
}

/// Handle to a running sampler; stop it with [`stop`](Self::stop).
pub struct SamplerHandle {
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<SamplerReport>,
}

impl SamplerHandle {
    /// Signals the sampler, waits for its final tick, tears down the
    /// journal, and returns the lifetime report.
    pub fn stop(self) -> SamplerReport {
        {
            let mut stop = self.shared.stop.lock();
            *stop = true;
            self.shared.cv.notify_all();
        }
        let report = self.thread.join().unwrap_or_default();
        registry::disable_journal();
        report
    }
}

/// Keep the chrome counter series bounded: a pathological tick rate must
/// not grow memory without limit. Drops beyond the cap are logged once.
const SERIES_CAP: usize = 100_000;

/// Installs the flight-recorder journal and starts the sampler thread
/// writing telemetry records to `sink`. The `meta` header is written (and
/// flushed) before this returns, so an immediately attached follower
/// identifies the stream. Recording ([`registry::set_enabled`]) is managed
/// by the caller — the sampler only consumes.
pub fn start<W: io::Write + Send + 'static>(
    sink: W,
    cfg: SamplerConfig,
) -> io::Result<SamplerHandle> {
    registry::enable_journal(cfg.journal_capacity);
    let mut writer = TelemetryWriter::new(sink);
    writer.write_meta(
        cfg.interval.as_millis() as u64,
        cfg.journal_capacity,
        cfg.span_budget.map(|b| b.as_millis() as u64),
    )?;
    writer.flush()?;
    let shared = Arc::new(Shared {
        stop: Mutex::new(false),
        cv: Condvar::new(),
    });
    let thread_shared = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("extradeep-telemetry".to_string())
        .spawn(move || run(writer, cfg, thread_shared))?;
    Ok(SamplerHandle { shared, thread })
}

fn run<W: io::Write>(
    mut writer: TelemetryWriter<W>,
    cfg: SamplerConfig,
    shared: Arc<Shared>,
) -> SamplerReport {
    let mut report = SamplerReport::default();
    let mut watchdog = cfg.span_budget.map(|b| Watchdog::new(b.as_nanos() as u64));
    let stalls_counter = registry::counter("obs.watchdog.stalls");
    let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut last_dropped = 0u64;
    let mut series_overflow_logged = false;
    loop {
        let stopping = {
            let mut stop = shared.stop.lock();
            if !*stop {
                shared.cv.wait_for(&mut stop, cfg.interval);
            }
            *stop
        };

        let io_err = |r: io::Result<()>, n: &mut u64| {
            if r.is_err() {
                *n += 1;
            }
        };

        // 1. Drain the journal (span edges, log lines): stream each event
        //    and feed the watchdog.
        let events = registry::journal_drain(usize::MAX);
        for ev in &events {
            if let Some(w) = watchdog.as_mut() {
                w.observe(ev);
            }
            io_err(writer.write_event(ev), &mut report.io_errors);
        }

        // 1b. Coalesce counter activity into one delta record per changed
        //     counter per tick. The increment path never journals (it would
        //     swamp the ring from the model-search hot loops); the tick
        //     reads the cumulative atomics instead.
        let now = registry::now_ns();
        for (name, value) in registry::counter_values() {
            let last = totals.entry(name).or_insert(0);
            // A drain() between ticks resets counters; treat the re-grown
            // value as the whole delta rather than underflowing.
            let delta = if value >= *last { value - *last } else { value };
            *last = value;
            if delta == 0 {
                continue;
            }
            io_err(
                writer.write_event(&JournalEvent::CounterAdd {
                    name,
                    delta,
                    t_ns: now,
                }),
                &mut report.io_errors,
            );
            if report.counter_series.len() < SERIES_CAP {
                report.counter_series.push(CounterSample {
                    name: name.to_string(),
                    t_ns: now,
                    value,
                });
            } else if !series_overflow_logged {
                series_overflow_logged = true;
                crate::warn!("telemetry: counter series capped at {SERIES_CAP} samples");
            }
        }

        // 2. Journal drops invalidate the open-span picture.
        let dropped = registry::journal_dropped();
        if dropped > last_dropped {
            last_dropped = dropped;
            if let Some(w) = watchdog.as_mut() {
                w.clear();
            }
        }

        // 3. Resources.
        let sample = sample_resources();
        io_err(writer.write_sample(&sample), &mut report.io_errors);

        // 4. Watchdog: flag budget overruns.
        if let Some(w) = watchdog.as_mut() {
            for stall in w.check(now) {
                crate::warn!(
                    "watchdog: span '{}' open for {:.3} s exceeds budget {:.3} s (tid {})",
                    stall.name,
                    Duration::from_nanos(stall.active_ns).as_secs_f64(),
                    Duration::from_nanos(stall.budget_ns).as_secs_f64(),
                    stall.tid
                );
                stalls_counter.incr();
                io_err(writer.write_stall(&stall), &mut report.io_errors);
                report.stalls += 1;
            }
        }

        // 5. Periodic snapshot: per-tick span aggregates + cumulative
        //    counters/histograms.
        let new_spans = registry::take_new_spans();
        let snap = registry::snapshot();
        io_err(
            writer.write_snapshot(report.snapshots_emitted, &snap, &new_spans, dropped),
            &mut report.io_errors,
        );
        report.snapshots_emitted += 1;
        io_err(writer.flush(), &mut report.io_errors);
        report.ticks += 1;

        if stopping {
            // Backpressure post-mortem: if the journal ring overflowed at
            // any point, the stream silently lost span/log events. Say so
            // loudly — once, at the end — both on the log and in the stream
            // itself, as a stall-style record a follower will render.
            let total_dropped = registry::journal_dropped();
            if total_dropped > 0 {
                crate::warn!(
                    "telemetry: journal dropped {total_dropped} event(s); raise the journal \
                     capacity or shorten --telemetry-interval-ms"
                );
                // One more drain so the warn! above reaches the stream too.
                for ev in registry::journal_drain(usize::MAX) {
                    io_err(writer.write_event(&ev), &mut report.io_errors);
                }
                io_err(
                    writer.write_stall(&crate::watchdog::Stall {
                        name: "obs.journal.backpressure",
                        tid: 0,
                        t_ns: registry::now_ns(),
                        active_ns: total_dropped,
                        budget_ns: 0,
                    }),
                    &mut report.io_errors,
                );
                report.stalls += 1;
            }
            break;
        }
    }
    report.journal_dropped = registry::journal_dropped();
    report.records_written = writer.records_written();
    io_err(writer.flush(), &mut report.io_errors);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;
    use crate::testutil::LOCK as TEST_LOCK;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().clone()).unwrap()
        }
    }

    #[test]
    fn resource_sample_reads_proc_on_linux() {
        let s = sample_resources();
        #[cfg(target_os = "linux")]
        {
            assert!(s.rss_bytes > 0, "VmRSS should be nonzero: {s:?}");
            assert!(s.threads >= 1, "at least this thread: {s:?}");
        }
        let later = sample_resources();
        assert!(later.t_ns >= s.t_ns);
    }

    #[test]
    fn sampler_emits_snapshots_and_samples() {
        let _l = TEST_LOCK.lock();
        crate::registry::reset();
        let sink = SharedBuf::default();
        let handle = start(
            sink.clone(),
            SamplerConfig {
                interval: Duration::from_millis(10),
                ..SamplerConfig::default()
            },
        )
        .unwrap();
        crate::registry::set_enabled(true);
        for _ in 0..3 {
            let _g = span("test.sampled");
            crate::registry::counter("test.sampler.count").add(5);
            std::thread::sleep(Duration::from_millis(12));
        }
        crate::registry::set_enabled(false);
        let report = handle.stop();
        crate::registry::reset();

        assert!(report.ticks >= 2, "expected >= 2 ticks: {report:?}");
        assert!(report.snapshots_emitted >= 2);
        assert_eq!(report.io_errors, 0);
        assert!(
            report
                .counter_series
                .iter()
                .any(|c| c.name == "test.sampler.count" && c.value > 0),
            "counter series missing: {:?}",
            report.counter_series
        );
        let text = sink.text();
        let first = text.lines().next().unwrap();
        assert!(first.contains("\"type\":\"meta\""), "{first}");
        let snapshots = text
            .lines()
            .filter(|l| l.contains("\"type\":\"snapshot\""))
            .count();
        assert!(snapshots >= 2, "{text}");
        assert!(text.contains("\"type\":\"sample\""));
        assert!(text.contains("\"type\":\"span\""));
        assert!(text.contains("\"event\":\"end\""));
    }

    #[test]
    fn watchdog_fires_on_budget_exceeding_span() {
        let _l = TEST_LOCK.lock();
        crate::registry::reset();
        let sink = SharedBuf::default();
        let handle = start(
            sink.clone(),
            SamplerConfig {
                interval: Duration::from_millis(5),
                span_budget: Some(Duration::from_millis(10)),
                ..SamplerConfig::default()
            },
        )
        .unwrap();
        crate::registry::set_enabled(true);
        {
            let _g = span("test.stalled.phase");
            std::thread::sleep(Duration::from_millis(60));
        }
        crate::registry::set_enabled(false);
        let report = handle.stop();
        crate::registry::reset();

        assert!(
            report.stalls >= 1,
            "watchdog should flag the stall: {report:?}"
        );
        let text = sink.text();
        assert!(
            text.contains("\"type\":\"stall\"") && text.contains("test.stalled.phase"),
            "{text}"
        );
    }

    #[test]
    fn journal_backpressure_is_surfaced_at_stop() {
        let _l = TEST_LOCK.lock();
        crate::registry::reset();
        let sink = SharedBuf::default();
        let handle = start(
            sink.clone(),
            SamplerConfig {
                // Long interval + tiny ring: the burst below lands entirely
                // between ticks and must overflow the journal.
                interval: Duration::from_millis(500),
                journal_capacity: 64,
                ..SamplerConfig::default()
            },
        )
        .unwrap();
        crate::registry::set_enabled(true);
        for i in 0..500 {
            let _g = span(if i % 2 == 0 {
                "test.burst.a"
            } else {
                "test.burst.b"
            });
        }
        crate::registry::set_enabled(false);
        let report = handle.stop();
        crate::registry::reset();

        assert!(
            report.journal_dropped > 0,
            "ring should overflow: {report:?}"
        );
        assert!(
            report.stalls >= 1,
            "backpressure should count as a stall: {report:?}"
        );
        let text = sink.text();
        assert!(text.contains("obs.journal.backpressure"), "{text}");
        assert!(
            text.contains("journal dropped") && text.contains("\"level\":\"warn\""),
            "warn should reach the stream: {text}"
        );
    }
}
