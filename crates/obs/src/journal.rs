//! The flight recorder: a lock-free bounded ring buffer journaling span
//! begin/end edges, counter deltas, and log lines as they happen.
//!
//! Where [`crate::Snapshot`] answers "what did the run cost in total", the
//! journal answers "what is the process doing *right now*": the background
//! [`crate::sampler`] drains it every tick and streams the events to the
//! telemetry sink, and the [`crate::watchdog`] replays them to spot spans
//! that have been open longer than their budget.
//!
//! The buffer is a fixed-capacity Vyukov-style MPMC queue: producers are the
//! instrumented hot paths (any thread), the consumer is the sampler thread.
//! A full buffer **drops the new event and counts the drop** — backpressure
//! must never block or grow memory on the recording side. Consumers can see
//! the drop count ([`Journal::dropped`]) and treat the stream as lossy.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::log::Level;

/// One journaled occurrence. Span and counter names are the `&'static str`
/// the instrumentation sites were compiled with; log messages are formatted
/// at record time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEvent {
    /// A span opened (`t_ns` = start).
    SpanBegin {
        name: &'static str,
        tid: u64,
        depth: u32,
        t_ns: u64,
    },
    /// A span closed (`t_ns` = end; `start = t_ns - dur_ns`).
    SpanEnd {
        name: &'static str,
        tid: u64,
        depth: u32,
        t_ns: u64,
        dur_ns: u64,
    },
    /// A counter moved by `delta`.
    CounterAdd {
        name: &'static str,
        delta: u64,
        t_ns: u64,
    },
    /// A log line passed the level filter.
    Log {
        level: Level,
        message: String,
        t_ns: u64,
    },
}

impl JournalEvent {
    /// The event's timestamp, nanoseconds since the trace epoch.
    pub fn t_ns(&self) -> u64 {
        match self {
            JournalEvent::SpanBegin { t_ns, .. }
            | JournalEvent::SpanEnd { t_ns, .. }
            | JournalEvent::CounterAdd { t_ns, .. }
            | JournalEvent::Log { t_ns, .. } => *t_ns,
        }
    }
}

/// One queue cell: a sequence number lamping the cell's state plus the
/// (possibly uninitialized) payload. `seq == pos` means writable for the
/// producer claiming `pos`; `seq == pos + 1` means readable for the consumer
/// claiming `pos`.
struct Slot {
    seq: AtomicU64,
    value: UnsafeCell<MaybeUninit<JournalEvent>>,
}

// The sequence-number protocol guarantees exclusive access to `value`
// between the `Acquire` load that observes the slot ready and the `Release`
// store that hands it over, so sharing slots across threads is sound.
unsafe impl Sync for Slot {}

/// A bounded, lock-free MPMC event queue with drop counting.
pub struct Journal {
    slots: Box<[Slot]>,
    mask: u64,
    /// Next position a consumer will read.
    head: AtomicU64,
    /// Next position a producer will claim.
    tail: AtomicU64,
    dropped: AtomicU64,
}

impl Journal {
    /// Creates a journal holding up to `capacity` events (rounded up to a
    /// power of two, minimum 64).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(64).next_power_of_two() as u64;
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Journal {
            slots,
            mask: cap - 1,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events rejected because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Enqueues one event; on a full buffer the event is discarded and the
    /// drop counter incremented. Never blocks.
    pub fn push(&self, ev: JournalEvent) -> bool {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq.wrapping_sub(pos) as i64 {
                0 => {
                    if self
                        .tail
                        .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        // We own the slot until the Release store below.
                        unsafe { (*slot.value.get()).write(ev) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    // Lost the race; reload and retry.
                    pos = self.tail.load(Ordering::Relaxed);
                }
                d if d < 0 => {
                    // The slot still holds an unconsumed event from the
                    // previous lap: the queue is full.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                _ => pos = self.tail.load(Ordering::Relaxed),
            }
        }
    }

    /// Dequeues one event, or `None` when empty.
    pub fn pop(&self) -> Option<JournalEvent> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq.wrapping_sub(pos + 1) as i64 {
                0 => {
                    if self
                        .head
                        .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        let ev = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(ev);
                    }
                    pos = self.head.load(Ordering::Relaxed);
                }
                d if d < 0 => return None, // empty
                _ => pos = self.head.load(Ordering::Relaxed),
            }
        }
    }

    /// Dequeues up to `max` events in arrival order.
    pub fn pop_batch(&self, max: usize) -> Vec<JournalEvent> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.pop() {
                Some(ev) => out.push(ev),
                None => break,
            }
        }
        out
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Unconsumed events own heap payloads (log messages); drain them.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn counter(delta: u64) -> JournalEvent {
        JournalEvent::CounterAdd {
            name: "t.c",
            delta,
            t_ns: delta,
        }
    }

    #[test]
    fn fifo_order_and_capacity_rounding() {
        let j = Journal::with_capacity(100);
        assert_eq!(j.capacity(), 128);
        for i in 0..5 {
            assert!(j.push(counter(i)));
        }
        let got = j.pop_batch(16);
        assert_eq!(got.len(), 5);
        for (i, ev) in got.iter().enumerate() {
            assert_eq!(*ev, counter(i as u64));
        }
        assert_eq!(j.pop(), None);
    }

    #[test]
    fn full_buffer_drops_and_counts() {
        let j = Journal::with_capacity(64);
        for i in 0..64 {
            assert!(j.push(counter(i)));
        }
        assert!(!j.push(counter(99)));
        assert!(!j.push(counter(100)));
        assert_eq!(j.dropped(), 2);
        // Draining frees slots again.
        assert_eq!(j.pop_batch(64).len(), 64);
        assert!(j.push(counter(7)));
        assert_eq!(j.pop(), Some(counter(7)));
    }

    #[test]
    fn wraps_around_many_laps() {
        let j = Journal::with_capacity(64);
        for lap in 0..10u64 {
            for i in 0..64 {
                assert!(j.push(counter(lap * 64 + i)));
            }
            let got = j.pop_batch(64);
            assert_eq!(got.first(), Some(&counter(lap * 64)));
            assert_eq!(got.len(), 64);
        }
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn concurrent_producers_lose_nothing_within_capacity() {
        let j = Arc::new(Journal::with_capacity(4096));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let j = Arc::clone(&j);
            handles.push(std::thread::spawn(move || {
                for i in 0..512 {
                    j.push(counter(t * 10_000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let got = j.pop_batch(usize::MAX);
        assert_eq!(got.len(), 4 * 512);
        assert_eq!(j.dropped(), 0);
        // Per-producer subsequences keep their order.
        for t in 0..4u64 {
            let mine: Vec<u64> = got
                .iter()
                .filter_map(|ev| match ev {
                    JournalEvent::CounterAdd { delta, .. }
                        if (t * 10_000..t * 10_000 + 512).contains(delta) =>
                    {
                        Some(*delta)
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(mine.len(), 512);
            assert!(mine.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn drop_frees_unconsumed_heap_payloads() {
        let j = Journal::with_capacity(64);
        for _ in 0..10 {
            j.push(JournalEvent::Log {
                level: Level::Info,
                message: "heap-allocated message".to_string(),
                t_ns: 0,
            });
        }
        drop(j); // leak-checked under the sanitizer jobs
    }
}
