//! The global registry: the enabled flag, the monotonic clock, per-thread
//! span buffers, the named counter/histogram tables, and the optional
//! flight-recorder journal.
//!
//! Everything lives in statics so instrumentation sites need no handle
//! threading. The hot paths touch only the enabled flag (one relaxed atomic
//! load) plus, when enabled, a thread-local buffer; the `parking_lot`
//! mutexes here are contended only during collection.

use crate::journal::{Journal, JournalEvent};
use crate::metrics::{Counter, CounterValue, Histogram, HistogramSummary};
use crate::span::SpanRecord;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation is recording. One relaxed atomic load — this is
/// the *entire* cost of a disabled span or counter increment.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off globally. Spans already open keep their start
/// time and still record on drop; spans opened while disabled never record.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Shorthand for [`set_enabled`]`(true)`.
pub fn enable() {
    set_enabled(true);
}

/// Shorthand for [`set_enabled`]`(false)`.
pub fn disable() {
    set_enabled(false);
}

/// The process-wide trace epoch: all span timestamps are nanoseconds since
/// the first observation.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch (monotonic).
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// --- Flight-recorder journal -------------------------------------------

static JOURNAL_ENABLED: AtomicBool = AtomicBool::new(false);
static JOURNAL: RwLock<Option<Arc<Journal>>> = RwLock::new(None);

/// Whether the flight recorder is capturing events. One relaxed atomic load;
/// instrumentation checks this *after* the main enabled flag, so the
/// journal-off case adds nothing to a disabled site and one load to an
/// enabled one.
#[inline(always)]
pub fn journal_enabled() -> bool {
    JOURNAL_ENABLED.load(Ordering::Relaxed)
}

/// Installs a journal with (at least) the given capacity and starts
/// flight-recording span edges, counter deltas, and log events. Replaces any
/// previous journal (its unconsumed events are dropped).
pub fn enable_journal(capacity: usize) {
    let j = Arc::new(Journal::with_capacity(capacity));
    *JOURNAL.write() = Some(j);
    JOURNAL_ENABLED.store(true, Ordering::SeqCst);
}

/// Stops flight-recording and discards the journal with any unconsumed
/// events. Returns the total number of events dropped under backpressure
/// over the journal's lifetime.
pub fn disable_journal() -> u64 {
    JOURNAL_ENABLED.store(false, Ordering::SeqCst);
    let taken = JOURNAL.write().take();
    taken.map(|j| j.dropped()).unwrap_or(0)
}

/// Enqueues an event on the installed journal (no-op when none). Never
/// blocks: a full journal counts a drop instead.
#[inline]
pub(crate) fn journal_push(ev: JournalEvent) {
    if let Some(j) = JOURNAL.read().as_deref() {
        j.push(ev);
    }
}

/// Dequeues up to `max` journaled events in arrival order (the sampler's
/// per-tick drain). Empty when no journal is installed.
pub fn journal_drain(max: usize) -> Vec<JournalEvent> {
    match JOURNAL.read().as_deref() {
        Some(j) => j.pop_batch(max),
        None => Vec::new(),
    }
}

/// Events dropped so far because the journal was full (0 when none is
/// installed).
pub fn journal_dropped() -> u64 {
    JOURNAL.read().as_deref().map(Journal::dropped).unwrap_or(0)
}

// --- Span / counter / histogram registry -------------------------------

/// One thread's finished-span buffer. The owning thread pushes; collection
/// locks briefly from outside.
pub(crate) struct ThreadBuffer {
    pub(crate) tid: u64,
    pub(crate) records: Mutex<Vec<SpanRecord>>,
}

struct Registry {
    threads: Mutex<Vec<Arc<ThreadBuffer>>>,
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    /// Finished spans already handed out by [`take_new_spans`] (the
    /// sampler's per-tick emission) but still owed to the final cumulative
    /// [`snapshot`]/[`drain`]. Keeping them here is what lets a periodic
    /// consumer and the end-of-run report coexist without double-counting.
    archived: Mutex<Vec<SpanRecord>>,
    next_tid: AtomicU64,
}

static REGISTRY: Registry = Registry {
    threads: Mutex::new(Vec::new()),
    counters: Mutex::new(BTreeMap::new()),
    histograms: Mutex::new(BTreeMap::new()),
    archived: Mutex::new(Vec::new()),
    next_tid: AtomicU64::new(0),
};

/// Creates and registers the calling thread's span buffer (called once per
/// thread from the span machinery's thread-local init).
pub(crate) fn register_thread() -> Arc<ThreadBuffer> {
    let buf = Arc::new(ThreadBuffer {
        tid: REGISTRY.next_tid.fetch_add(1, Ordering::Relaxed),
        records: Mutex::new(Vec::new()),
    });
    REGISTRY.threads.lock().push(Arc::clone(&buf));
    buf
}

/// Returns the named counter, creating and registering it on first use.
/// Call sites should cache the returned reference (e.g. in a `OnceLock`) so
/// the registry lock is taken once, not per increment.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = REGISTRY.counters.lock();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new(name))))
}

/// Reads every registered counter's cumulative value. Cheap (one registry
/// lock plus relaxed loads) — this is how the sampler turns hot-path
/// counters into per-tick telemetry deltas without any journal traffic on
/// the increment path.
pub fn counter_values() -> Vec<(&'static str, u64)> {
    REGISTRY
        .counters
        .lock()
        .iter()
        .map(|(name, c)| (*name, c.get()))
        .collect()
}

/// Returns the named histogram, creating and registering it on first use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut map = REGISTRY.histograms.lock();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new(name))))
}

/// Moves the spans that finished since the last call out of the per-thread
/// buffers, returning them sorted. The moved spans are retained internally
/// so the cumulative [`snapshot`]/[`drain`] still reports them exactly once;
/// a span that is still open (guard alive) is simply not finished yet and
/// will appear in a later call.
pub fn take_new_spans() -> Vec<SpanRecord> {
    let mut fresh = Vec::new();
    for buf in REGISTRY.threads.lock().iter() {
        fresh.append(&mut buf.records.lock());
    }
    fresh.sort_by_key(|s| (s.tid, s.start_ns, s.depth, s.end_ns()));
    REGISTRY.archived.lock().extend(fresh.iter().cloned());
    fresh
}

/// Everything recorded so far: finished spans plus current counter and
/// histogram readings.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Finished spans from every thread, sorted by `(tid, start, depth)`.
    pub spans: Vec<SpanRecord>,
    /// Counter readings at capture time.
    pub counters: Vec<CounterValue>,
    /// Histogram summaries at capture time.
    pub histograms: Vec<HistogramSummary>,
    /// Capture timestamp, nanoseconds since the trace epoch.
    pub captured_ns: u64,
}

impl Snapshot {
    /// Total recorded time of all spans with this exact name.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Number of finished spans with this exact name.
    pub fn count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// The reading of a named counter, when present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Merges another snapshot into this one: spans are concatenated (and
    /// re-sorted), counters with the same name are summed, histograms with
    /// the same name are bucket-merged. This is how per-interval telemetry
    /// snapshots — or snapshots from different processes — roll up into one
    /// cumulative view; merging is associative and order-insensitive for
    /// counters and histograms.
    pub fn merge(&mut self, other: &Snapshot) {
        self.spans.extend(other.spans.iter().cloned());
        self.spans
            .sort_by_key(|s| (s.tid, s.start_ns, s.depth, s.end_ns()));
        for c in &other.counters {
            match self.counters.iter_mut().find(|mine| mine.name == c.name) {
                Some(mine) => mine.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => mine.merge(h),
                None => self.histograms.push(h.clone()),
            }
        }
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        self.captured_ns = self.captured_ns.max(other.captured_ns);
    }
}

fn collect(take: bool) -> Snapshot {
    // Spans already archived by a periodic `take_new_spans` consumer come
    // first; `drain` hands them over for good, `snapshot` only copies.
    let mut spans = if take {
        std::mem::take(&mut *REGISTRY.archived.lock())
    } else {
        REGISTRY.archived.lock().clone()
    };
    for buf in REGISTRY.threads.lock().iter() {
        let mut records = buf.records.lock();
        if take {
            spans.append(&mut records);
        } else {
            spans.extend(records.iter().cloned());
        }
    }
    spans.sort_by_key(|s| (s.tid, s.start_ns, s.depth, s.end_ns()));
    let counters = REGISTRY
        .counters
        .lock()
        .values()
        .map(|c| CounterValue {
            name: c.name().to_string(),
            value: if take { c.take() } else { c.get() },
        })
        .collect();
    let histograms = REGISTRY
        .histograms
        .lock()
        .values()
        .map(|h| {
            let s = h.summary();
            if take {
                h.reset();
            }
            s
        })
        .collect();
    Snapshot {
        spans,
        counters,
        histograms,
        captured_ns: now_ns(),
    }
}

/// Copies out everything recorded so far without clearing it.
pub fn snapshot() -> Snapshot {
    collect(false)
}

/// Takes everything recorded so far, clearing span buffers and zeroing
/// counters and histograms — the natural call between profiled runs.
pub fn drain() -> Snapshot {
    collect(true)
}

/// Clears all recorded data without returning it.
pub fn reset() {
    drain();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_flag_flips() {
        let _l = crate::testutil::LOCK.lock();
        set_enabled(false);
        assert!(!is_enabled());
        set_enabled(true);
        assert!(is_enabled());
        set_enabled(false);
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn counter_registration_is_idempotent() {
        let a = counter("registry.test.counter") as *const Counter;
        let b = counter("registry.test.counter") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_registration_is_idempotent() {
        let a = histogram("registry.test.histogram") as *const Histogram;
        let b = histogram("registry.test.histogram") as *const Histogram;
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_merge_sums_counters_and_histograms() {
        let mut a = Snapshot {
            counters: vec![
                CounterValue {
                    name: "x".to_string(),
                    value: 2,
                },
                CounterValue {
                    name: "y".to_string(),
                    value: 1,
                },
            ],
            histograms: vec![HistogramSummary::from_samples("h", &[1, 10])],
            captured_ns: 5,
            ..Snapshot::default()
        };
        let b = Snapshot {
            counters: vec![
                CounterValue {
                    name: "x".to_string(),
                    value: 3,
                },
                CounterValue {
                    name: "z".to_string(),
                    value: 9,
                },
            ],
            histograms: vec![HistogramSummary::from_samples("h", &[100])],
            captured_ns: 9,
            ..Snapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.counter("x"), Some(5));
        assert_eq!(a.counter("y"), Some(1));
        assert_eq!(a.counter("z"), Some(9));
        assert_eq!(a.captured_ns, 9);
        let h = &a.histograms[0];
        assert_eq!(h.count, 3);
        assert_eq!(h.max, 100);
        assert_eq!(
            *h,
            HistogramSummary::from_samples("h", &[1, 10, 100]),
            "merge must equal recording the concatenated stream"
        );
    }

    #[test]
    fn journal_enable_disable_round_trip() {
        let _l = crate::testutil::LOCK.lock();
        assert!(!journal_enabled());
        assert!(journal_drain(16).is_empty());
        enable_journal(128);
        assert!(journal_enabled());
        journal_push(JournalEvent::CounterAdd {
            name: "t.j",
            delta: 1,
            t_ns: 0,
        });
        let got = journal_drain(16);
        assert_eq!(got.len(), 1);
        assert_eq!(journal_dropped(), 0);
        assert_eq!(disable_journal(), 0);
        assert!(!journal_enabled());
    }
}
