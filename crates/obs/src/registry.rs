//! The global registry: the enabled flag, the monotonic clock, per-thread
//! span buffers, and the named counter/histogram tables.
//!
//! Everything lives in statics so instrumentation sites need no handle
//! threading. The hot paths touch only the enabled flag (one relaxed atomic
//! load) plus, when enabled, a thread-local buffer; the `parking_lot`
//! mutexes here are contended only during collection.

use crate::metrics::{Counter, CounterValue, Histogram, HistogramSummary};
use crate::span::SpanRecord;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation is recording. One relaxed atomic load — this is
/// the *entire* cost of a disabled span or counter increment.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off globally. Spans already open keep their start
/// time and still record on drop; spans opened while disabled never record.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Shorthand for [`set_enabled`]`(true)`.
pub fn enable() {
    set_enabled(true);
}

/// Shorthand for [`set_enabled`]`(false)`.
pub fn disable() {
    set_enabled(false);
}

/// The process-wide trace epoch: all span timestamps are nanoseconds since
/// the first observation.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch (monotonic).
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// One thread's finished-span buffer. The owning thread pushes; collection
/// locks briefly from outside.
pub(crate) struct ThreadBuffer {
    pub(crate) tid: u64,
    pub(crate) records: Mutex<Vec<SpanRecord>>,
}

struct Registry {
    threads: Mutex<Vec<Arc<ThreadBuffer>>>,
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    next_tid: AtomicU64,
}

static REGISTRY: Registry = Registry {
    threads: Mutex::new(Vec::new()),
    counters: Mutex::new(BTreeMap::new()),
    histograms: Mutex::new(BTreeMap::new()),
    next_tid: AtomicU64::new(0),
};

/// Creates and registers the calling thread's span buffer (called once per
/// thread from the span machinery's thread-local init).
pub(crate) fn register_thread() -> Arc<ThreadBuffer> {
    let buf = Arc::new(ThreadBuffer {
        tid: REGISTRY.next_tid.fetch_add(1, Ordering::Relaxed),
        records: Mutex::new(Vec::new()),
    });
    REGISTRY.threads.lock().push(Arc::clone(&buf));
    buf
}

/// Returns the named counter, creating and registering it on first use.
/// Call sites should cache the returned reference (e.g. in a `OnceLock`) so
/// the registry lock is taken once, not per increment.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = REGISTRY.counters.lock();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new(name))))
}

/// Returns the named histogram, creating and registering it on first use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut map = REGISTRY.histograms.lock();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new(name))))
}

/// Everything recorded so far: finished spans plus current counter and
/// histogram readings.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Finished spans from every thread, sorted by `(tid, start, depth)`.
    pub spans: Vec<SpanRecord>,
    /// Counter readings at capture time.
    pub counters: Vec<CounterValue>,
    /// Histogram summaries at capture time.
    pub histograms: Vec<HistogramSummary>,
    /// Capture timestamp, nanoseconds since the trace epoch.
    pub captured_ns: u64,
}

impl Snapshot {
    /// Total recorded time of all spans with this exact name.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Number of finished spans with this exact name.
    pub fn count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// The reading of a named counter, when present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }
}

fn collect(take: bool) -> Snapshot {
    let mut spans = Vec::new();
    for buf in REGISTRY.threads.lock().iter() {
        let mut records = buf.records.lock();
        if take {
            spans.append(&mut records);
        } else {
            spans.extend(records.iter().cloned());
        }
    }
    spans.sort_by_key(|s| (s.tid, s.start_ns, s.depth, s.end_ns()));
    let counters = REGISTRY
        .counters
        .lock()
        .values()
        .map(|c| CounterValue {
            name: c.name(),
            value: if take { c.take() } else { c.get() },
        })
        .collect();
    let histograms = REGISTRY
        .histograms
        .lock()
        .values()
        .map(|h| {
            let s = h.summary();
            if take {
                h.reset();
            }
            s
        })
        .collect();
    Snapshot {
        spans,
        counters,
        histograms,
        captured_ns: now_ns(),
    }
}

/// Copies out everything recorded so far without clearing it.
pub fn snapshot() -> Snapshot {
    collect(false)
}

/// Takes everything recorded so far, clearing span buffers and zeroing
/// counters and histograms — the natural call between profiled runs.
pub fn drain() -> Snapshot {
    collect(true)
}

/// Clears all recorded data without returning it.
pub fn reset() {
    let _ = drain();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_flag_flips() {
        let _l = crate::testutil::LOCK.lock();
        set_enabled(false);
        assert!(!is_enabled());
        set_enabled(true);
        assert!(is_enabled());
        set_enabled(false);
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn counter_registration_is_idempotent() {
        let a = counter("registry.test.counter") as *const Counter;
        let b = counter("registry.test.counter") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_registration_is_idempotent() {
        let a = histogram("registry.test.histogram") as *const Histogram;
        let b = histogram("registry.test.histogram") as *const Histogram;
        assert_eq!(a, b);
    }
}
