//! Telemetry exporters: JSON-Lines stream records and Prometheus text
//! exposition.
//!
//! Both are hand-rolled string emitters — the obs runtime stays serde-free
//! (consumers parse with whatever they like; the `extradeep tail` command
//! uses serde_json on the other side of the file).
//!
//! ## JSON-Lines schema
//!
//! One object per line, discriminated by `"type"`:
//!
//! | type       | fields                                                               |
//! |------------|----------------------------------------------------------------------|
//! | `meta`     | `version, pid, interval_ms, journal_capacity[, budget_ms]`          |
//! | `span`     | `event` (`"begin"`/`"end"`), `name, tid, depth, t_ns[, dur_ns]`     |
//! | `counter`  | `name, delta, t_ns`                                                  |
//! | `log`      | `level, message, t_ns`                                               |
//! | `sample`   | `t_ns, rss_bytes, cpu_user_ns, cpu_system_ns, threads`              |
//! | `snapshot` | `seq, t_ns, journal_dropped, counters{}, histograms[], spans[]`     |
//! | `stall`    | `name, tid, t_ns, active_ns, budget_ns`                              |
//!
//! `snapshot.counters`/`histograms` are **cumulative** readings (so any
//! single snapshot line is a complete state, and consecutive ones diff into
//! rates); `snapshot.spans` aggregates only the spans that *finished since
//! the previous snapshot* (so summing them over all lines never
//! double-counts). Unknown record types must be skipped by consumers — the
//! schema is append-only.

use crate::chrome::write_json_string;
use crate::journal::JournalEvent;
use crate::metrics::{bucket_upper, HistogramSummary};
use crate::registry::Snapshot;
use crate::sampler::ResourceSample;
use crate::span::SpanRecord;
use crate::watchdog::Stall;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;

/// Schema version stamped into the `meta` record.
pub const TELEMETRY_VERSION: u32 = 1;

/// Serializes a full [`Snapshot`] as one JSON object (not a stream record):
/// every span with its exact timestamps, plus cumulative counters and
/// histograms with their sparse log₂ buckets. Lossless — `extradeep tail`
/// parses this back into an identical `Snapshot`.
pub fn snapshot_json(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(snap.spans.len() * 96 + 512);
    out.push_str("{\"captured_ns\":");
    let _ = write!(out, "{}", snap.captured_ns);
    out.push_str(",\"spans\":[");
    for (i, s) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_span_object(&mut out, s);
    }
    out.push_str("],\"counters\":{");
    for (i, c) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&mut out, &c.name);
        let _ = write!(out, ":{}", c.value);
    }
    out.push_str("},\"histograms\":[");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_histogram_object(&mut out, h);
    }
    out.push_str("]}");
    out
}

fn write_span_object(out: &mut String, s: &SpanRecord) {
    out.push_str("{\"name\":");
    write_json_string(out, &s.name);
    let _ = write!(
        out,
        ",\"start_ns\":{},\"dur_ns\":{},\"tid\":{},\"depth\":{}}}",
        s.start_ns, s.dur_ns, s.tid, s.depth
    );
}

fn write_histogram_object(out: &mut String, h: &HistogramSummary) {
    out.push_str("{\"name\":");
    write_json_string(out, &h.name);
    let _ = write!(
        out,
        ",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"buckets\":[",
        h.count, h.sum, h.max, h.p50, h.p95
    );
    for (i, &(idx, c)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{idx},{c}]");
    }
    out.push_str("]}");
}

/// Streams telemetry records as JSON Lines into any [`io::Write`] sink.
/// The sampler owns one of these; `flush` is called once per tick so a
/// `tail -f`-style reader (or `extradeep tail --follow`) sees records with
/// at most one interval of latency.
pub struct TelemetryWriter<W: io::Write> {
    sink: W,
    records_written: u64,
}

impl<W: io::Write> TelemetryWriter<W> {
    pub fn new(sink: W) -> Self {
        TelemetryWriter {
            sink,
            records_written: 0,
        }
    }

    /// Records written so far (diagnostics).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.sink.write_all(line.as_bytes())?;
        self.sink.write_all(b"\n")?;
        self.records_written += 1;
        Ok(())
    }

    /// The stream header: schema version, process id, and sampler config.
    pub fn write_meta(
        &mut self,
        interval_ms: u64,
        journal_capacity: usize,
        budget_ms: Option<u64>,
    ) -> io::Result<()> {
        let mut line = String::with_capacity(128);
        let _ = write!(
            line,
            "{{\"type\":\"meta\",\"version\":{TELEMETRY_VERSION},\"pid\":{},\"interval_ms\":{interval_ms},\"journal_capacity\":{journal_capacity}",
            std::process::id()
        );
        if let Some(b) = budget_ms {
            let _ = write!(line, ",\"budget_ms\":{b}");
        }
        line.push('}');
        self.write_line(&line)
    }

    /// One journaled event (span edge, counter delta, or log line).
    pub fn write_event(&mut self, ev: &JournalEvent) -> io::Result<()> {
        let mut line = String::with_capacity(128);
        match ev {
            JournalEvent::SpanBegin {
                name,
                tid,
                depth,
                t_ns,
            } => {
                line.push_str("{\"type\":\"span\",\"event\":\"begin\",\"name\":");
                write_json_string(&mut line, name);
                let _ = write!(line, ",\"tid\":{tid},\"depth\":{depth},\"t_ns\":{t_ns}}}");
            }
            JournalEvent::SpanEnd {
                name,
                tid,
                depth,
                t_ns,
                dur_ns,
            } => {
                line.push_str("{\"type\":\"span\",\"event\":\"end\",\"name\":");
                write_json_string(&mut line, name);
                let _ = write!(
                    line,
                    ",\"tid\":{tid},\"depth\":{depth},\"t_ns\":{t_ns},\"dur_ns\":{dur_ns}}}"
                );
            }
            JournalEvent::CounterAdd { name, delta, t_ns } => {
                line.push_str("{\"type\":\"counter\",\"name\":");
                write_json_string(&mut line, name);
                let _ = write!(line, ",\"delta\":{delta},\"t_ns\":{t_ns}}}");
            }
            JournalEvent::Log {
                level,
                message,
                t_ns,
            } => {
                let _ = write!(line, "{{\"type\":\"log\",\"level\":\"{}\"", level.tag());
                line.push_str(",\"message\":");
                write_json_string(&mut line, message);
                let _ = write!(line, ",\"t_ns\":{t_ns}}}");
            }
        }
        self.write_line(&line)
    }

    /// One resource reading from `/proc/self`.
    pub fn write_sample(&mut self, s: &ResourceSample) -> io::Result<()> {
        let mut line = String::with_capacity(128);
        let _ = write!(
            line,
            "{{\"type\":\"sample\",\"t_ns\":{},\"rss_bytes\":{},\"cpu_user_ns\":{},\"cpu_system_ns\":{},\"threads\":{}}}",
            s.t_ns, s.rss_bytes, s.cpu_user_ns, s.cpu_system_ns, s.threads
        );
        self.write_line(&line)
    }

    /// One periodic snapshot: cumulative counters and histograms from
    /// `snap`, plus per-interval aggregates of `new_spans` (the spans that
    /// finished since the previous snapshot).
    pub fn write_snapshot(
        &mut self,
        seq: u64,
        snap: &Snapshot,
        new_spans: &[SpanRecord],
        journal_dropped: u64,
    ) -> io::Result<()> {
        let mut line = String::with_capacity(512);
        let _ = write!(
            line,
            "{{\"type\":\"snapshot\",\"seq\":{seq},\"t_ns\":{},\"journal_dropped\":{journal_dropped}",
            snap.captured_ns
        );
        line.push_str(",\"counters\":{");
        for (i, c) in snap.counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            write_json_string(&mut line, &c.name);
            let _ = write!(line, ":{}", c.value);
        }
        line.push_str("},\"histograms\":[");
        for (i, h) in snap.histograms.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            write_histogram_object(&mut line, h);
        }
        line.push_str("],\"spans\":[");
        let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for s in new_spans {
            let e = agg.entry(&s.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
        }
        for (i, (name, (count, total_ns))) in agg.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str("{\"name\":");
            write_json_string(&mut line, name);
            let _ = write!(line, ",\"count\":{count},\"total_ns\":{total_ns}}}");
        }
        line.push_str("]}");
        self.write_line(&line)
    }

    /// One watchdog stall flag.
    pub fn write_stall(&mut self, stall: &Stall) -> io::Result<()> {
        let mut line = String::with_capacity(128);
        line.push_str("{\"type\":\"stall\",\"name\":");
        write_json_string(&mut line, stall.name);
        let _ = write!(
            line,
            ",\"tid\":{},\"t_ns\":{},\"active_ns\":{},\"budget_ns\":{}}}",
            stall.tid, stall.t_ns, stall.active_ns, stall.budget_ns
        );
        self.write_line(&line)
    }

    pub fn flush(&mut self) -> io::Result<()> {
        self.sink.flush()
    }
}

/// Renders a [`Snapshot`] in the Prometheus text exposition format
/// (version 0.0.4): counters as `_total` counters, log₂ histograms as
/// native histograms with cumulative `le` buckets on the fixed power-of-two
/// grid, and per-name span aggregates as two labeled families.
///
/// Because the bucket grid is fixed by construction (bit length of the
/// sample), expositions from different processes scrape-merge correctly —
/// the same property [`HistogramSummary::merge`] relies on.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(1024);

    for c in &snap.counters {
        let m = metric_name(&c.name);
        let _ = writeln!(out, "# TYPE {m}_total counter");
        let _ = writeln!(out, "{m}_total {}", c.value);
    }

    for h in &snap.histograms {
        let m = metric_name(&h.name);
        let _ = writeln!(out, "# TYPE {m} histogram");
        let mut cum = 0u64;
        for &(idx, c) in &h.buckets {
            cum += c;
            let _ = writeln!(
                out,
                "{m}_bucket{{le=\"{}\"}} {cum}",
                bucket_upper(idx as usize)
            );
        }
        let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{m}_sum {}", h.sum);
        let _ = writeln!(out, "{m}_count {}", h.count);
    }

    // Span aggregates: count and total time per span name.
    let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for s in &snap.spans {
        let e = agg.entry(&s.name).or_insert((0, 0));
        e.0 += 1;
        e.1 += s.dur_ns;
    }
    if !agg.is_empty() {
        let _ = writeln!(out, "# TYPE extradeep_span_count gauge");
        let _ = writeln!(out, "# TYPE extradeep_span_total_ns gauge");
        for (name, (count, total_ns)) in &agg {
            let label = label_escape(name);
            let _ = writeln!(out, "extradeep_span_count{{span=\"{label}\"}} {count}");
            let _ = writeln!(
                out,
                "extradeep_span_total_ns{{span=\"{label}\"}} {total_ns}"
            );
        }
    }
    out
}

/// `model.search.hypotheses` → `extradeep_model_search_hypotheses`.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("extradeep_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

fn label_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Level;
    use crate::metrics::CounterValue;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            spans: vec![
                SpanRecord {
                    name: "sim.replay".into(),
                    start_ns: 100,
                    dur_ns: 900,
                    tid: 0,
                    depth: 0,
                },
                SpanRecord {
                    name: "sim.replay".into(),
                    start_ns: 2_000,
                    dur_ns: 500,
                    tid: 1,
                    depth: 0,
                },
            ],
            counters: vec![CounterValue {
                name: "model.search.hypotheses".to_string(),
                value: 42,
            }],
            histograms: vec![HistogramSummary::from_samples("agg.latency", &[3, 9, 300])],
            captured_ns: 5_000,
        }
    }

    #[test]
    fn stream_records_are_one_valid_json_object_per_line() {
        let mut w = TelemetryWriter::new(Vec::new());
        w.write_meta(250, 4096, Some(1_000)).unwrap();
        w.write_event(&JournalEvent::SpanBegin {
            name: "sim.replay",
            tid: 0,
            depth: 0,
            t_ns: 100,
        })
        .unwrap();
        w.write_event(&JournalEvent::SpanEnd {
            name: "sim.replay",
            tid: 0,
            depth: 0,
            t_ns: 1_000,
            dur_ns: 900,
        })
        .unwrap();
        w.write_event(&JournalEvent::CounterAdd {
            name: "model.search.hypotheses",
            delta: 7,
            t_ns: 500,
        })
        .unwrap();
        w.write_event(&JournalEvent::Log {
            level: Level::Warn,
            message: "a \"quoted\" message\nwith newline".to_string(),
            t_ns: 600,
        })
        .unwrap();
        w.write_sample(&ResourceSample {
            t_ns: 700,
            rss_bytes: 1 << 20,
            cpu_user_ns: 5_000_000,
            cpu_system_ns: 1_000_000,
            threads: 4,
        })
        .unwrap();
        let snap = sample_snapshot();
        w.write_snapshot(0, &snap, &snap.spans, 3).unwrap();
        w.write_stall(&Stall {
            name: "model.search",
            tid: 2,
            t_ns: 9_000,
            active_ns: 8_000,
            budget_ns: 1_000,
        })
        .unwrap();
        w.flush().unwrap();
        assert_eq!(w.records_written(), 8);

        let text = String::from_utf8(w.sink).unwrap();
        let mut types = Vec::new();
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("each line parses");
            types.push(v["type"].as_str().unwrap().to_string());
        }
        assert_eq!(
            types,
            ["meta", "span", "span", "counter", "log", "sample", "snapshot", "stall"]
        );
        // Spot-check structure of the snapshot record.
        let snap_line: serde_json::Value = serde_json::from_str(
            text.lines()
                .find(|l| l.contains("\"type\":\"snapshot\""))
                .unwrap(),
        )
        .unwrap();
        assert_eq!(snap_line["counters"]["model.search.hypotheses"], 42);
        assert_eq!(snap_line["journal_dropped"], 3);
        assert_eq!(snap_line["spans"][0]["name"], "sim.replay");
        assert_eq!(snap_line["spans"][0]["count"], 2);
        assert_eq!(snap_line["spans"][0]["total_ns"], 1_400);
    }

    #[test]
    fn snapshot_json_is_valid_and_lossless_shaped() {
        let snap = sample_snapshot();
        let v: serde_json::Value = serde_json::from_str(&snapshot_json(&snap)).unwrap();
        assert_eq!(v["captured_ns"], 5_000);
        assert_eq!(v["spans"].as_array().unwrap().len(), 2);
        assert_eq!(v["spans"][0]["start_ns"], 100);
        assert_eq!(v["counters"]["model.search.hypotheses"], 42);
        let h = &v["histograms"][0];
        assert_eq!(h["name"], "agg.latency");
        assert_eq!(h["count"], 3);
        assert!(h["buckets"].as_array().unwrap().len() >= 2);
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE extradeep_model_search_hypotheses_total counter"));
        assert!(text.contains("extradeep_model_search_hypotheses_total 42"));
        assert!(text.contains("# TYPE extradeep_agg_latency histogram"));
        assert!(text.contains("extradeep_agg_latency_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("extradeep_agg_latency_sum 312"));
        assert!(text.contains("extradeep_span_count{span=\"sim.replay\"} 2"));
        assert!(text.contains("extradeep_span_total_ns{span=\"sim.replay\"} 1400"));
        // Buckets are cumulative: the last finite bucket equals the count.
        let last_finite = text
            .lines()
            .filter(|l| l.starts_with("extradeep_agg_latency_bucket{le=\"") && !l.contains("+Inf"))
            .next_back()
            .unwrap();
        assert!(last_finite.ends_with(" 3"), "{last_finite}");
    }
}
