//! Minimal leveled logging to stderr.
//!
//! Deliberately tiny: a global max level (default [`Level::Warn`], so
//! default output is unchanged from the historical ad-hoc `eprintln!`s) and
//! four macros. No targets, no structured fields — the span/counter side of
//! this crate covers that.
//!
//! ```
//! extradeep_obs::log::set_max_level(extradeep_obs::log::Level::Info);
//! extradeep_obs::info!("fitted {} kernels", 12);
//! extradeep_obs::log::set_max_level(extradeep_obs::log::Level::Warn);
//! ```

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    /// The lowercase wire/display tag (`"error"`, `"warn"`, …) — also the
    /// `level` field of telemetry `log` records.
    pub fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Default: warnings and errors only, matching the pipeline's historical
/// stderr behavior.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the global maximum level (messages above it are dropped).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global maximum level.
pub fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Whether a message at `level` would currently be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Parses a tag produced by [`Level::tag`] back into a level (telemetry
/// stream ingestion).
pub fn parse_level(tag: &str) -> Option<Level> {
    match tag {
        "error" => Some(Level::Error),
        "warn" => Some(Level::Warn),
        "info" => Some(Level::Info),
        "debug" => Some(Level::Debug),
        _ => None,
    }
}

/// Emits one formatted line to stderr (and, when the flight recorder is on,
/// journals the message). Prefer the macros.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    if enabled(level) {
        if crate::registry::journal_enabled() {
            crate::registry::journal_push(crate::journal::JournalEvent::Log {
                level,
                message: args.to_string(),
                t_ns: crate::registry::now_ns(),
            });
        }
        eprintln!("[{}] {}", level.tag(), args);
    }
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Error, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Warn, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Info, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Debug, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_gate() {
        let _l = crate::testutil::LOCK.lock();
        set_max_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_max_level(Level::Debug);
        assert!(enabled(Level::Debug));
        assert_eq!(max_level(), Level::Debug);
        set_max_level(Level::Warn);
    }

    #[test]
    fn error_is_most_severe() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }
}
