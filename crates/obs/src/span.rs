//! RAII spans with thread-local stacks.
//!
//! A span measures the wall time of a lexical scope. Each thread keeps its
//! own depth counter and finished-span buffer, so spans nest correctly under
//! rayon's fork/join execution: a worker that steals a task while one of its
//! own spans is open simply records the stolen task's spans as deeper
//! entries on the *same* thread — stack discipline per OS thread is exactly
//! what the Chrome trace B/E event model requires.

use crate::journal::JournalEvent;
use crate::registry::{self, ThreadBuffer};
use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::Arc;

/// One finished span.
///
/// Live instrumentation always produces borrowed `&'static` names (the hot
/// path never allocates for a span); the owned variant exists so spans
/// parsed back from a telemetry stream can be reconstituted into a
/// [`crate::Snapshot`] in another process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, by convention `<crate>.<phase>[.<detail>]`.
    pub name: Cow<'static, str>,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Recording thread (obs-internal id, dense from 0).
    pub tid: u64,
    /// Nesting depth on the recording thread at span start (0 = top level).
    pub depth: u32,
}

impl SpanRecord {
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    /// The span's category: the name segment before the first `.` — the
    /// crate/stage it belongs to (`sim`, `trace`, `agg`, `model`, `core`).
    pub fn category(&self) -> &str {
        match self.name.split_once('.') {
            Some((cat, _)) => cat,
            None => &self.name,
        }
    }
}

struct Local {
    buf: Arc<ThreadBuffer>,
    depth: u32,
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

struct ActiveSpan {
    name: &'static str,
    start_ns: u64,
}

/// Guard returned by [`span`]; records the span when dropped.
///
/// `#[must_use]`: binding it to `_` drops it immediately and measures
/// nothing — bind to a named `_guard`-style local instead.
#[must_use = "a span guard measures the scope it is bound to; dropping it immediately records an empty span"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    /// A guard must drop on the thread that opened it (the thread-local
    /// depth counter and buffer are only correct there), so it is `!Send`.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Opens a span. When recording is disabled this is one atomic load and the
/// returned guard is inert.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !registry::is_enabled() {
        return SpanGuard {
            active: None,
            _not_send: std::marker::PhantomData,
        };
    }
    let start_ns = registry::now_ns();
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let local = slot.get_or_insert_with(|| Local {
            buf: registry::register_thread(),
            depth: 0,
        });
        let depth = local.depth;
        local.depth += 1;
        if registry::journal_enabled() {
            registry::journal_push(JournalEvent::SpanBegin {
                name,
                tid: local.buf.tid,
                depth,
                t_ns: start_ns,
            });
        }
    });
    SpanGuard {
        active: Some(ActiveSpan { name, start_ns }),
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let end_ns = registry::now_ns();
        LOCAL.with(|slot| {
            let mut slot = slot.borrow_mut();
            // The local state exists: an active guard implies this thread
            // went through `span()`'s init. (Guards are not Send, so drop
            // runs on the opening thread.)
            if let Some(local) = slot.as_mut() {
                local.depth = local.depth.saturating_sub(1);
                let dur_ns = end_ns.saturating_sub(active.start_ns);
                local.buf.records.lock().push(SpanRecord {
                    name: Cow::Borrowed(active.name),
                    start_ns: active.start_ns,
                    dur_ns,
                    tid: local.buf.tid,
                    depth: local.depth,
                });
                if registry::journal_enabled() {
                    registry::journal_push(JournalEvent::SpanEnd {
                        name: active.name,
                        tid: local.buf.tid,
                        depth: local.depth,
                        t_ns: end_ns,
                        dur_ns,
                    });
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    use crate::testutil::LOCK as TEST_LOCK;

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = TEST_LOCK.lock();
        registry::set_enabled(false);
        registry::reset();
        {
            let _g = span("test.disabled");
        }
        let snap = registry::drain();
        assert_eq!(snap.count("test.disabled"), 0);
    }

    #[test]
    fn nested_spans_record_depth_and_containment() {
        let _l = TEST_LOCK.lock();
        registry::reset();
        registry::set_enabled(true);
        {
            let _outer = span("test.outer");
            {
                let _inner = span("test.inner");
            }
            {
                let _inner2 = span("test.inner2");
            }
        }
        registry::set_enabled(false);
        let snap = registry::drain();
        let outer = snap.spans.iter().find(|s| s.name == "test.outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "test.inner").unwrap();
        let inner2 = snap.spans.iter().find(|s| s.name == "test.inner2").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner2.depth, 1);
        assert_eq!(outer.tid, inner.tid);
        // Containment: children start no earlier and end no later.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
        // Siblings are disjoint.
        assert!(inner.end_ns() <= inner2.start_ns);
    }

    #[test]
    fn spans_from_multiple_threads_get_distinct_tids() {
        let _l = TEST_LOCK.lock();
        registry::reset();
        registry::set_enabled(true);
        let handle = std::thread::spawn(|| {
            let _g = span("test.worker");
        });
        {
            let _g = span("test.main");
        }
        handle.join().unwrap();
        registry::set_enabled(false);
        let snap = registry::drain();
        let main = snap.spans.iter().find(|s| s.name == "test.main").unwrap();
        let worker = snap.spans.iter().find(|s| s.name == "test.worker").unwrap();
        assert_ne!(main.tid, worker.tid);
    }

    #[test]
    fn category_is_prefix_before_dot() {
        let r = SpanRecord {
            name: "model.search.inner".into(),
            start_ns: 0,
            dur_ns: 1,
            tid: 0,
            depth: 0,
        };
        assert_eq!(r.category(), "model");
        let bare = SpanRecord {
            name: "flat".into(),
            ..r
        };
        assert_eq!(bare.category(), "flat");
    }

    #[test]
    fn journal_records_span_edges_in_order() {
        let _l = TEST_LOCK.lock();
        registry::reset();
        registry::enable_journal(256);
        registry::set_enabled(true);
        {
            let _outer = span("test.jouter");
            let _inner = span("test.jinner");
        }
        registry::set_enabled(false);
        let events = registry::journal_drain(usize::MAX);
        registry::disable_journal();
        registry::reset();
        let kinds: Vec<String> = events
            .iter()
            .map(|ev| match ev {
                JournalEvent::SpanBegin { name, .. } => format!("B:{name}"),
                JournalEvent::SpanEnd { name, .. } => format!("E:{name}"),
                other => format!("{other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "B:test.jouter",
                "B:test.jinner",
                "E:test.jinner",
                "E:test.jouter"
            ]
        );
        // End events carry a duration consistent with their timestamps.
        for ev in &events {
            if let JournalEvent::SpanEnd { t_ns, dur_ns, .. } = ev {
                assert!(*t_ns >= *dur_ns);
            }
        }
    }
}
