//! Chrome trace-event JSON export.
//!
//! Emits the classic [trace-event format] understood by `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev): a JSON array of events with
//! matched `B`/`E` (begin/end) duration pairs per thread, `C` counter
//! samples, and `M` metadata records naming the process and threads.
//!
//! The writer is hand-rolled: the event schema is tiny and fixed, and the
//! runtime must not depend on serde. Span names are `&'static str` chosen by
//! instrumentation sites, but they are still escaped defensively.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::registry::Snapshot;
use crate::span::SpanRecord;
use std::fmt::Write as _;

/// One point of a counter time series for the trace: the counter's
/// cumulative value at `t_ns`. Produced by the telemetry sampler from
/// journaled deltas; each sample becomes a `C` event, so the counter renders
/// as a stepped curve over the run instead of a single end-of-run value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    pub name: String,
    pub t_ns: u64,
    pub value: u64,
}

/// Serializes a [`Snapshot`] as a Chrome trace-event JSON array.
///
/// Guarantees, per thread id:
/// - every `B` has a matching `E` with the same name;
/// - timestamps are non-decreasing in emission order;
/// - nesting is proper (a child's `E` precedes its parent's `E`).
///
/// These hold because spans are recorded with per-thread stack discipline
/// (see [`crate::span`]); the export is a linear sweep that replays that
/// stack from `(start, depth, end)`-sorted records.
pub fn chrome_trace_json(snap: &Snapshot) -> String {
    chrome_trace_json_with_counters(snap, &[])
}

/// [`chrome_trace_json`] plus counter time series: each [`CounterSample`]
/// becomes a `C` event at its own timestamp, giving Perfetto a stepped
/// counter track over the run. The snapshot's final counter/histogram
/// readings are still emitted at `captured_ns` as the closing points.
pub fn chrome_trace_json_with_counters(snap: &Snapshot, series: &[CounterSample]) -> String {
    let mut out = String::with_capacity(snap.spans.len() * 96 + series.len() * 80 + 1024);
    out.push('[');
    let mut first = true;

    // Process metadata.
    meta_event(&mut out, &mut first, "process_name", 0, None, "extradeep");

    // Thread metadata: one row per recording thread, named by its obs tid.
    let mut tids: Vec<u64> = snap.spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for &tid in &tids {
        let name = format!("obs-thread-{tid}");
        meta_event(&mut out, &mut first, "thread_name", tid, Some(tid), &name);
    }

    // Duration events: per-tid B/E sweep. Records arrive sorted by
    // (tid, start, depth, end); within one tid that order is exactly the
    // order of span *openings*, so replaying a stack of open end-times
    // yields properly nested, timestamp-ordered B/E pairs.
    for &tid in &tids {
        let spans = snap.spans.iter().filter(|s| s.tid == tid);
        // Stack of (end_ns, name) for spans whose B has been emitted.
        let mut open: Vec<(u64, &SpanRecord)> = Vec::new();
        for s in spans {
            while let Some(&(end, rec)) = open.last() {
                if end <= s.start_ns {
                    duration_event(&mut out, &mut first, "E", rec, end);
                    open.pop();
                } else {
                    break;
                }
            }
            duration_event(&mut out, &mut first, "B", s, s.start_ns);
            open.push((s.end_ns(), s));
        }
        while let Some((end, rec)) = open.pop() {
            duration_event(&mut out, &mut first, "E", rec, end);
        }
    }

    // Counter time series from the journal, grouped by name with
    // timestamps ascending per counter track.
    let mut ordered: Vec<&CounterSample> = series.iter().collect();
    ordered.sort_by(|a, b| (a.name.as_str(), a.t_ns).cmp(&(b.name.as_str(), b.t_ns)));
    for c in ordered {
        counter_event(&mut out, &mut first, &c.name, c.t_ns, c.value);
    }

    // Counter samples at capture time.
    for c in &snap.counters {
        counter_event(&mut out, &mut first, &c.name, snap.captured_ns, c.value);
    }
    for h in &snap.histograms {
        counter_event(&mut out, &mut first, &h.name, snap.captured_ns, h.count);
    }

    out.push(']');
    out.push('\n');
    out
}

/// Nanoseconds → the format's microsecond timestamps, keeping ns precision
/// as a fractional part.
fn write_ts(out: &mut String, ns: u64) {
    let micros = ns / 1000;
    let frac = ns % 1000;
    let _ = write!(out, "{micros}.{frac:03}");
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
    out.push('\n');
}

fn meta_event(
    out: &mut String,
    first: &mut bool,
    kind: &str,
    tid: u64,
    sort_index: Option<u64>,
    name: &str,
) {
    sep(out, first);
    let _ = write!(
        out,
        "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":"
    );
    write_json_string(out, name);
    if let Some(idx) = sort_index {
        let _ = write!(out, ",\"sort_index\":{idx}");
    }
    out.push_str("}}");
}

fn duration_event(out: &mut String, first: &mut bool, ph: &str, rec: &SpanRecord, ts_ns: u64) {
    sep(out, first);
    let _ = write!(out, "{{\"name\":");
    write_json_string(out, &rec.name);
    let _ = write!(out, ",\"cat\":");
    write_json_string(out, rec.category());
    let _ = write!(
        out,
        ",\"ph\":\"{ph}\",\"pid\":0,\"tid\":{},\"ts\":",
        rec.tid
    );
    write_ts(out, ts_ns);
    out.push('}');
}

fn counter_event(out: &mut String, first: &mut bool, name: &str, ts_ns: u64, value: u64) {
    sep(out, first);
    out.push_str("{\"name\":");
    write_json_string(out, name);
    out.push_str(",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":");
    write_ts(out, ts_ns);
    let _ = write!(out, ",\"args\":{{\"value\":{value}}}}}");
}

/// Writes `s` as a JSON string literal (quotes included). Shared with the
/// telemetry exporter, which has the same no-serde constraint.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CounterValue;

    fn rec(name: &'static str, start: u64, dur: u64, tid: u64, depth: u32) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            start_ns: start,
            dur_ns: dur,
            tid,
            depth,
        }
    }

    #[test]
    fn escaping_covers_quotes_and_controls() {
        let mut s = String::new();
        write_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn nested_spans_emit_matched_pairs_in_order() {
        // outer [0, 100], inner [10, 40], sibling [50, 90]
        let snap = Snapshot {
            spans: vec![
                rec("core.outer", 0, 100, 0, 0),
                rec("model.inner", 10, 30, 0, 1),
                rec("model.sibling", 50, 40, 0, 1),
            ],
            ..Default::default()
        };
        let json = chrome_trace_json(&snap);
        // Order of B/E events for tid 0 must replay the stack:
        // B outer, B inner, E inner, B sibling, E sibling, E outer.
        let seq: Vec<&str> = json
            .lines()
            .filter(|l| l.contains("\"ph\":\"B\"") || l.contains("\"ph\":\"E\""))
            .map(|l| if l.contains("\"ph\":\"B\"") { "B" } else { "E" })
            .collect();
        assert_eq!(seq, ["B", "B", "E", "B", "E", "E"]);
        assert!(json.contains("\"cat\":\"model\""));
    }

    #[test]
    fn counters_become_c_events() {
        let snap = Snapshot {
            counters: vec![CounterValue {
                name: "model.search.hypotheses".to_string(),
                value: 42,
            }],
            captured_ns: 5000,
            ..Default::default()
        };
        let json = chrome_trace_json(&snap);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"value\":42"));
    }

    #[test]
    fn counter_series_emit_ascending_c_events_per_track() {
        let series = vec![
            CounterSample {
                name: "model.hyp".to_string(),
                t_ns: 9_000,
                value: 80,
            },
            CounterSample {
                name: "model.hyp".to_string(),
                t_ns: 3_000,
                value: 30,
            },
            CounterSample {
                name: "agg.events".to_string(),
                t_ns: 5_000,
                value: 12,
            },
        ];
        let json = chrome_trace_json_with_counters(&Snapshot::default(), &series);
        let c_lines: Vec<&str> = json
            .lines()
            .filter(|l| l.contains("\"ph\":\"C\""))
            .collect();
        assert_eq!(c_lines.len(), 3);
        // Sorted by (name, t_ns): agg first, then model.hyp at 3µs, 9µs.
        assert!(c_lines[0].contains("agg.events"));
        assert!(c_lines[1].contains("\"ts\":3000.000") && c_lines[1].contains("\"value\":30"));
        assert!(c_lines[2].contains("\"ts\":9000.000") && c_lines[2].contains("\"value\":80"));
    }

    #[test]
    fn timestamps_are_fractional_micros() {
        let mut s = String::new();
        write_ts(&mut s, 1_234_567);
        assert_eq!(s, "1234.567");
        let mut s = String::new();
        write_ts(&mut s, 42);
        assert_eq!(s, "0.042");
    }
}
