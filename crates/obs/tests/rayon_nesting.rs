//! Property test: span nesting discipline holds under arbitrary fork/join
//! shapes executed on rayon's work-stealing pool.
//!
//! The invariant the Chrome exporter relies on: on every OS thread, spans
//! form a proper stack — two spans on the same thread are either disjoint in
//! time or one contains the other (by `(start, end)` *and* by depth).

use proptest::prelude::*;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

/// A recursive fork/join workload shape.
#[derive(Debug, Clone)]
enum Shape {
    /// A leaf span doing a little work.
    Leaf,
    /// A span wrapping two children executed via `rayon::join`.
    Fork(Box<Shape>, Box<Shape>),
    /// A span wrapping two children executed sequentially.
    Seq(Box<Shape>, Box<Shape>),
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    let leaf = Just(Shape::Leaf);
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Shape::Fork(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Shape::Seq(Box::new(a), Box::new(b))),
        ]
    })
}

fn execute(shape: &Shape) {
    match shape {
        Shape::Leaf => {
            let _s = extradeep_obs::span("prop.leaf");
            std::hint::black_box(7u64.wrapping_mul(13));
        }
        Shape::Fork(a, b) => {
            let _s = extradeep_obs::span("prop.fork");
            rayon::join(|| execute(a), || execute(b));
        }
        Shape::Seq(a, b) => {
            let _s = extradeep_obs::span("prop.seq");
            execute(a);
            execute(b);
        }
    }
}

fn count_spans(shape: &Shape) -> usize {
    match shape {
        Shape::Leaf => 1,
        Shape::Fork(a, b) | Shape::Seq(a, b) => 1 + count_spans(a) + count_spans(b),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn per_thread_spans_form_a_proper_stack(shape in shape_strategy()) {
        let _l = LOCK.lock().unwrap();
        extradeep_obs::reset();
        extradeep_obs::set_enabled(true);
        execute(&shape);
        extradeep_obs::set_enabled(false);
        let snap = extradeep_obs::drain();

        // Nothing lost: every executed span is recorded exactly once.
        prop_assert_eq!(snap.spans.len(), count_spans(&shape));

        // Per-thread stack discipline.
        let mut tids: Vec<u64> = snap.spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let spans: Vec<_> = snap.spans.iter().filter(|s| s.tid == tid).collect();
            for (i, a) in spans.iter().enumerate() {
                for b in spans.iter().skip(i + 1) {
                    let disjoint = a.end_ns() <= b.start_ns || b.end_ns() <= a.start_ns;
                    let a_in_b = a.start_ns >= b.start_ns
                        && a.end_ns() <= b.end_ns()
                        && a.depth > b.depth;
                    let b_in_a = b.start_ns >= a.start_ns
                        && b.end_ns() <= a.end_ns()
                        && b.depth > a.depth;
                    prop_assert!(
                        disjoint || a_in_b || b_in_a,
                        "spans on tid {} must nest or be disjoint: {:?} vs {:?}",
                        tid, a, b
                    );
                }
            }
        }
    }
}
