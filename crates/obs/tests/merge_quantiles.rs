//! Property tests for histogram merging: merging per-process (or
//! per-interval) summaries must behave exactly as if the concatenated sample
//! stream had been recorded into one histogram, and the merged quantiles may
//! differ from the exact order statistics only by the log₂ bucket
//! resolution.

use extradeep_obs::metrics::bucket_upper;
use extradeep_obs::HistogramSummary;
use proptest::prelude::*;

/// The log₂ bucket a value lands in: 0 for zero, bit length otherwise
/// (mirrors the recording path in `extradeep_obs::metrics`).
fn bucket_index(v: u64) -> u32 {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros()
    }
}

/// Exact order statistic at quantile `q` (the definition the phase report
/// uses): the value at rank `ceil(q·n)`, clamped to rank ≥ 1.
fn exact_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    // Spread across many buckets: zeros, small, mid, and huge values.
    prop::collection::vec(
        prop_oneof![Just(0u64), 1u64..16, 16u64..65_536, 65_536u64..=1 << 40,],
        0..64,
    )
}

proptest! {
    /// Strong form: bucket-wise merge is indistinguishable from recording
    /// the concatenated stream into a single histogram.
    #[test]
    fn merge_equals_concatenated_recording(a in samples(), b in samples()) {
        let mut merged = HistogramSummary::from_samples("h", &a);
        merged.merge(&HistogramSummary::from_samples("h", &b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, HistogramSummary::from_samples("h", &all));
    }

    /// Merge order cannot matter (cross-process roll-up has no natural
    /// order).
    #[test]
    fn merge_is_commutative_and_associative(
        a in samples(), b in samples(), c in samples()
    ) {
        let h = |s: &[u64]| HistogramSummary::from_samples("h", s);
        let mut ab_c = h(&a);
        ab_c.merge(&h(&b));
        ab_c.merge(&h(&c));
        let mut a_bc = h(&b);
        a_bc.merge(&h(&c));
        let mut left = h(&a);
        left.merge(&a_bc);
        prop_assert_eq!(&ab_c, &left);
        let mut ba = h(&b);
        ba.merge(&h(&a));
        ba.merge(&h(&c));
        prop_assert_eq!(&ab_c, &ba);
    }

    /// The merged p50/p95 agree with the exact order statistics of the
    /// concatenated stream up to one bucket boundary: the reported quantile
    /// is at least the exact value and at most the upper bound of the exact
    /// value's bucket (clamped to the observed max).
    #[test]
    fn merged_quantiles_within_one_bucket_of_exact(
        a in samples(), b in samples()
    ) {
        prop_assume!(!a.is_empty() || !b.is_empty());
        let mut merged = HistogramSummary::from_samples("h", &a);
        merged.merge(&HistogramSummary::from_samples("h", &b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        for (q, got) in [(0.50, merged.p50), (0.95, merged.p95)] {
            let exact = exact_quantile(&all, q);
            let upper = bucket_upper(bucket_index(exact)).min(merged.max);
            prop_assert!(
                got >= exact && got <= upper,
                "q={q}: exact {exact} <= reported {got} <= bucket upper {upper} violated"
            );
        }
    }
}
