//! Regression tests for the interaction between the sampler's periodic
//! `take_new_spans` and the end-of-run `snapshot`/`drain`: a span guard held
//! open across snapshot cycles must be neither lost nor double-counted, and
//! spans already handed to a periodic consumer must still appear exactly
//! once in the final cumulative drain.

use std::sync::Mutex;

/// Tests in this binary flip the global enabled flag; serialize them.
static LOCK: Mutex<()> = Mutex::new(());

fn names_of(spans: &[extradeep_obs::SpanRecord]) -> Vec<&str> {
    let mut names: Vec<&str> = spans.iter().map(|s| s.name.as_ref()).collect();
    names.sort_unstable();
    names
}

#[test]
fn guard_held_across_two_snapshot_cycles_is_counted_exactly_once() {
    let _l = LOCK.lock().unwrap();
    extradeep_obs::reset();
    extradeep_obs::set_enabled(true);

    let held = extradeep_obs::span("dtest.held");
    {
        let _a = extradeep_obs::span("dtest.tick1");
    }
    // First sampler tick: only the finished span moves out; the held guard
    // is simply not finished yet.
    let batch1 = extradeep_obs::take_new_spans();
    assert_eq!(names_of(&batch1), ["dtest.tick1"]);

    // A cumulative snapshot between ticks must still see the archived span.
    let mid = extradeep_obs::snapshot();
    assert_eq!(mid.count("dtest.tick1"), 1);
    assert_eq!(mid.count("dtest.held"), 0, "open span must not be emitted");

    {
        let _b = extradeep_obs::span("dtest.tick2");
    }
    // Second tick: only what finished since the first tick.
    let batch2 = extradeep_obs::take_new_spans();
    assert_eq!(names_of(&batch2), ["dtest.tick2"]);

    drop(held);
    extradeep_obs::set_enabled(false);
    let fin = extradeep_obs::drain();

    // The final drain reports everything exactly once: both archived spans
    // plus the one that closed after the last tick.
    assert_eq!(fin.count("dtest.tick1"), 1);
    assert_eq!(fin.count("dtest.tick2"), 1);
    assert_eq!(fin.count("dtest.held"), 1);
    assert_eq!(fin.spans.len(), 3);

    // And drain hands the archive over for good: nothing left behind.
    let empty = extradeep_obs::snapshot();
    assert_eq!(empty.spans.len(), 0);
}

#[test]
fn periodic_batches_and_final_drain_partition_the_spans() {
    let _l = LOCK.lock().unwrap();
    extradeep_obs::reset();
    extradeep_obs::set_enabled(true);

    let mut taken = Vec::new();
    for round in 0..3 {
        for _ in 0..=round {
            let _s = extradeep_obs::span("dtest.work");
        }
        taken.extend(extradeep_obs::take_new_spans());
    }
    let open = extradeep_obs::span("dtest.late");
    drop(open);
    extradeep_obs::set_enabled(false);
    let fin = extradeep_obs::drain();

    // 1+2+3 spans were handed out incrementally; the drain still carries all
    // of them plus the late one — once each.
    assert_eq!(taken.len(), 6);
    assert_eq!(fin.count("dtest.work"), 6);
    assert_eq!(fin.count("dtest.late"), 1);
}

#[test]
fn snapshot_between_ticks_does_not_consume_the_archive() {
    let _l = LOCK.lock().unwrap();
    extradeep_obs::reset();
    extradeep_obs::set_enabled(true);
    {
        let _s = extradeep_obs::span("dtest.one");
    }
    let _ = extradeep_obs::take_new_spans();
    // Two copying snapshots in a row see the archived span both times.
    assert_eq!(extradeep_obs::snapshot().count("dtest.one"), 1);
    assert_eq!(extradeep_obs::snapshot().count("dtest.one"), 1);
    extradeep_obs::set_enabled(false);
    assert_eq!(extradeep_obs::drain().count("dtest.one"), 1);
}
