//! The Chrome trace-event export, validated with a real JSON parser: the
//! emitted string must be valid JSON with the documented schema, matched
//! B/E pairs per thread, and non-decreasing timestamps.

use std::collections::HashMap;
use std::sync::Mutex;

/// Tests in this binary flip the global enabled flag; serialize them.
static LOCK: Mutex<()> = Mutex::new(());

fn record_some_work() -> extradeep_obs::Snapshot {
    extradeep_obs::reset();
    extradeep_obs::set_enabled(true);
    {
        let _outer = extradeep_obs::span("core.command");
        {
            let _m = extradeep_obs::span("model.search");
            for _ in 0..3 {
                let _inner = extradeep_obs::span("model.search.shape");
            }
        }
        let _a = extradeep_obs::span("agg.experiment");
    }
    extradeep_obs::counter("model.search.hypotheses").add(42);
    extradeep_obs::histogram("model.fit_ns").record(1234);
    extradeep_obs::set_enabled(false);
    extradeep_obs::drain()
}

#[test]
fn export_is_valid_json_with_matched_pairs() {
    let _l = LOCK.lock().unwrap();
    let snap = record_some_work();
    let json = extradeep_obs::chrome_trace_json(&snap);

    let value: serde_json::Value = serde_json::from_str(&json).expect("export must parse");
    let events = value.as_array().expect("top level must be an array");
    assert!(!events.is_empty());

    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    let mut b_count = 0;
    let mut e_count = 0;
    let mut saw_counter = false;
    for ev in events {
        let obj = ev.as_object().expect("every event is an object");
        let ph = obj["ph"].as_str().unwrap();
        let name = obj["name"].as_str().unwrap().to_string();
        match ph {
            "M" => continue,
            "C" => {
                saw_counter = true;
                assert!(obj["args"]["value"].is_number());
            }
            "B" | "E" => {
                let tid = obj["tid"].as_u64().unwrap();
                let ts = obj["ts"].as_f64().unwrap();
                let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
                assert!(
                    ts >= *prev,
                    "timestamps must be non-decreasing per tid: {ts} < {prev}"
                );
                *prev = ts;
                let stack = stacks.entry(tid).or_default();
                if ph == "B" {
                    b_count += 1;
                    stack.push(name);
                } else {
                    e_count += 1;
                    assert_eq!(stack.pop().as_ref(), Some(&name), "E must match open B");
                }
            }
            other => panic!("unknown phase kind '{other}'"),
        }
    }
    assert!(stacks.values().all(|s| s.is_empty()), "unclosed B events");
    assert_eq!(b_count, e_count);
    assert_eq!(b_count, snap.spans.len(), "one B/E pair per span");
    assert!(saw_counter, "counters must export as C events");
}

#[test]
fn export_carries_categories_and_metadata() {
    let _l = LOCK.lock().unwrap();
    let snap = record_some_work();
    let json = extradeep_obs::chrome_trace_json(&snap);
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    let events = value.as_array().unwrap();

    let cats: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("cat").and_then(|c| c.as_str()))
        .collect();
    assert!(cats.contains(&"core"));
    assert!(cats.contains(&"model"));
    assert!(cats.contains(&"agg"));
    assert!(events
        .iter()
        .any(|e| e["ph"] == "M" && e["name"] == "process_name"));
}

#[test]
fn spans_recorded_under_rayon_still_export_cleanly() {
    let _l = LOCK.lock().unwrap();
    extradeep_obs::reset();
    extradeep_obs::set_enabled(true);
    use rayon::prelude::*;
    let total: u64 = (0..64u64)
        .collect::<Vec<_>>()
        .par_iter()
        .map(|&i| {
            let _s = extradeep_obs::span("model.search");
            let _inner = extradeep_obs::span("model.search.shape");
            i
        })
        .sum();
    extradeep_obs::set_enabled(false);
    assert_eq!(total, 2016);
    let snap = extradeep_obs::drain();
    assert_eq!(snap.count("model.search"), 64);

    let json = extradeep_obs::chrome_trace_json(&snap);
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    let mut stacks: HashMap<u64, i64> = HashMap::new();
    for ev in value.as_array().unwrap() {
        match ev["ph"].as_str().unwrap() {
            "B" => *stacks.entry(ev["tid"].as_u64().unwrap()).or_default() += 1,
            "E" => {
                let depth = stacks.entry(ev["tid"].as_u64().unwrap()).or_default();
                *depth -= 1;
                assert!(*depth >= 0, "E without open B");
            }
            _ => {}
        }
    }
    assert!(stacks.values().all(|&d| d == 0));
}
