//! The analyzer run against the real workspace: the committed source must be
//! clean, and the committed ratchet baseline must match reality.
//!
//! This is the same check CI's `analyze` job performs, expressed as a test so
//! `cargo test` alone catches a reintroduced violation or a stale baseline.

use extradeep_analyze::baseline::Baseline;
use extradeep_analyze::{analyze_tree, compare_to_baseline, lints};
use std::path::PathBuf;

/// The workspace root: from `CARGO_MANIFEST_DIR` under cargo, otherwise the
/// nearest ancestor of the current directory holding `analyze-baseline.json`.
fn workspace_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        return PathBuf::from(dir).join("../..").canonicalize().unwrap();
    }
    let cwd = std::env::current_dir().unwrap();
    cwd.ancestors()
        .find(|d| d.join("analyze-baseline.json").is_file())
        .expect("workspace root with analyze-baseline.json not found")
        .to_path_buf()
}

#[test]
fn workspace_passes_the_ratchet() {
    let root = workspace_root();
    let result = analyze_tree(&root).unwrap();
    assert!(
        result.files_scanned > 50,
        "walk found the workspace sources"
    );

    let baseline_text = std::fs::read_to_string(root.join("analyze-baseline.json")).unwrap();
    let baseline = Baseline::from_json(&baseline_text).unwrap();
    let cmp = compare_to_baseline(&result, Some(&baseline));
    assert!(
        cmp.regressions.is_empty(),
        "new violations over the committed baseline: {:?}",
        cmp.regressions
    );
    assert!(
        cmp.improvements.is_empty(),
        "baseline is stale; re-run with --update-baseline: {:?}",
        cmp.improvements
    );
}

#[test]
fn nan_and_determinism_lints_are_at_zero() {
    // These two are hard invariants, not ratcheted debt: the committed
    // baseline must not carry a single frozen count for either.
    let root = workspace_root();
    let result = analyze_tree(&root).unwrap();
    let counts = result.counts_by_lint();
    for lint in [
        lints::NAN_UNSAFE_ORDERING,
        lints::NONDETERMINISTIC_ITERATION,
    ] {
        assert_eq!(
            counts.get(lint),
            Some(&0),
            "{lint} must stay at zero violations:\n{:#?}",
            result
                .violations
                .iter()
                .filter(|v| v.lint == lint)
                .collect::<Vec<_>>()
        );
    }
    let baseline_text = std::fs::read_to_string(root.join("analyze-baseline.json")).unwrap();
    let baseline = Baseline::from_json(&baseline_text).unwrap();
    assert_eq!(baseline.lint_total(lints::NAN_UNSAFE_ORDERING), 0);
    assert_eq!(baseline.lint_total(lints::NONDETERMINISTIC_ITERATION), 0);
}

#[test]
fn analyzer_passes_its_own_lints() {
    let root = workspace_root();
    let result = analyze_tree(&root.join("crates/analyze")).unwrap();
    assert!(
        result.violations.is_empty(),
        "the lint engine must be clean under its own lints: {:?}",
        result.violations
    );
    assert!(
        result.unused_allows.is_empty(),
        "stale allow directives in the analyzer: {:?}",
        result.unused_allows
    );
}

#[test]
fn no_stale_allows_anywhere() {
    let root = workspace_root();
    let result = analyze_tree(&root).unwrap();
    assert!(
        result.unused_allows.is_empty(),
        "allow directives that silence nothing: {:?}",
        result.unused_allows
    );
    // Every live suppression must carry a justification.
    for s in &result.suppressed {
        assert!(
            !s.justification.is_empty(),
            "unjustified allow for {} at {}:{}",
            s.violation.lint,
            s.violation.path,
            s.violation.line
        );
    }
}
