//! Adversarial inputs for the tokenizer: constructs specifically shaped to
//! fool a line- or regex-based scanner. Each case runs end-to-end through
//! the analyzer where it matters (suppression, test-code classification),
//! plus a lexing concatenation property under proptest.

use extradeep_analyze::lexer::{lex, TokenKind};
use extradeep_analyze::{analyze_tree, AnalysisResult};
use proptest::prelude::*;
use std::path::PathBuf;

/// A throwaway workspace-shaped tree under the system temp dir.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root = std::env::temp_dir().join(format!(
            "extradeep-analyze-adversarial-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        Fixture { root }
    }

    fn analyze(&self, rel: &str, source: &str) -> AnalysisResult {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, source).unwrap();
        analyze_tree(&self.root).unwrap()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

#[test]
fn allow_directive_inside_a_raw_string_is_not_a_directive() {
    // The raw string *contains* the directive text; the violation on the
    // next line must still fire, and no unused-allow may be reported.
    let fix = Fixture::new("raw-string-allow");
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               let _doc = r#\"suppress with // analyze:allow(panic-on-data-path) like this\"#;\n\
               x.unwrap()\n\
               }\n";
    let result = fix.analyze("crates/model/src/fix.rs", src);
    assert_eq!(
        result
            .violations
            .iter()
            .filter(|v| v.lint == "panic-on-data-path")
            .count(),
        1,
        "string content must never suppress: {:?}",
        result.violations
    );
    assert!(result.suppressed.is_empty());
    assert!(result.unused_allows.is_empty());
}

#[test]
fn doc_comment_mentioning_the_marker_is_not_a_directive() {
    let fix = Fixture::new("doc-allow");
    let src = "/// Suppress via `// analyze:allow(panic-on-data-path)` on the line.\n\
               fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let result = fix.analyze("crates/model/src/fix.rs", src);
    assert_eq!(result.violations.len(), 1, "{:?}", result.violations);
    assert!(result.unused_allows.is_empty());
}

#[test]
fn block_comment_spanning_cfg_test_does_not_flip_test_classification() {
    // The `#[cfg(test)] mod tests {` text lives entirely inside a nested
    // block comment; the function after it is production code.
    let fix = Fixture::new("comment-cfg-test");
    let src = "/* commented out scaffolding:\n\
               #[cfg(test)]\n\
               mod tests { /* inner */ fn t() {} }\n\
               still comment */\n\
               fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let result = fix.analyze("crates/model/src/fix.rs", src);
    assert_eq!(
        result.violations.len(),
        1,
        "code after the comment is production code: {:?}",
        result.violations
    );
    assert_eq!(result.violations[0].line, 5);
}

#[test]
fn real_cfg_test_after_a_block_comment_still_counts() {
    // Control for the case above: the same attribute *outside* a comment.
    let fix = Fixture::new("real-cfg-test");
    let src = "/* prose */\n\
               #[cfg(test)]\n\
               mod tests {\n\
               fn t(x: Option<u32>) -> u32 { x.unwrap() }\n\
               }\n";
    let result = fix.analyze("crates/model/src/fix.rs", src);
    assert!(result.violations.is_empty(), "{:?}", result.violations);
}

#[test]
fn lifetimes_and_chars_disambiguate() {
    let src = "fn f<'a>(x: &'a str) -> &'static str { let c = 'a'; let n = '\\n'; let u = '\\u{1F600}'; x }";
    let toks = lex(src);
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text(src))
        .collect();
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    assert_eq!(chars, vec!["'a'", "'\\n'", "'\\u{1F600}'"]);
}

#[test]
fn raw_string_hash_counts_nest_correctly() {
    // `"#` inside an `r##"…"##` does not terminate it.
    let src = "let a = r##\"contains \"# and // comment\"##; let b = 1;";
    let toks = lex(src);
    let raw: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::RawStr)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(raw, vec!["r##\"contains \"# and // comment\"##"]);
    assert!(toks.iter().all(|t| t.kind != TokenKind::LineComment));
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text(src) == "b"));
}

/// Self-delimiting source atoms: joined with newlines, each lexes to the
/// same token sequence regardless of its neighbors.
const ATOMS: &[&str] = &[
    "fn f() { let x = 1; }",
    "// line comment with analyze:allow(panic-on-data-path) text",
    "/* block /* nested */ comment */",
    "let s = \"str with \\\" escape and // slashes\";",
    "let r = r#\"raw with \" quote and /* opener \"#;",
    "let c = 'x';",
    "let nl = '\\n';",
    "fn g<'a>(x: &'a str) -> &'a str { x }",
    "let f = 1.25e-3;",
    "let t = x.0.1;",
    "let rng = 0..10;",
    "let half = 0..0.5;",
    "/// doc comment with 'tick and \" quote",
    "//! inner doc",
    "let b = b\"bytes\";",
    "#[cfg(test)]",
    "let big = 1_000_000u64;",
    "let hex = 0xFF_u8;",
    "match q { _ => {} }",
    "let raw_id = r#match;",
];

fn join(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| ATOMS[i % ATOMS.len()])
        .collect::<Vec<_>>()
        .join("\n")
}

/// (kind, text) pairs — spans and line numbers shift under concatenation,
/// the token stream itself must not.
fn shapes(src: &str) -> Vec<(TokenKind, String)> {
    lex(src)
        .iter()
        .map(|t| (t.kind, t.text(src).to_string()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// lex(a ++ "\n" ++ b) == lex(a) ++ lex(b): no atom's lexing depends on
    /// what precedes or follows it across a line boundary.
    #[test]
    fn lexing_distributes_over_concatenation(
        a in prop::collection::vec(0usize..1000, 0..8),
        b in prop::collection::vec(0usize..1000, 0..8),
    ) {
        let left = join(&a);
        let right = join(&b);
        let whole = format!("{left}\n{right}");
        let mut expected = shapes(&left);
        expected.extend(shapes(&right));
        prop_assert_eq!(shapes(&whole), expected);
    }

    /// Lexing loses no bytes: concatenating token texts and the whitespace
    /// gaps between them reproduces the input exactly.
    #[test]
    fn token_spans_tile_the_input(indices in prop::collection::vec(0usize..1000, 0..10)) {
        let src = join(&indices);
        let toks = lex(&src);
        let mut pos = 0usize;
        for t in &toks {
            prop_assert!(t.start >= pos, "overlapping tokens at byte {}", t.start);
            prop_assert!(
                src[pos..t.start].chars().all(char::is_whitespace),
                "non-whitespace skipped: {:?}",
                &src[pos..t.start]
            );
            prop_assert!(t.end > t.start);
            pos = t.end;
        }
        prop_assert!(src[pos..].chars().all(char::is_whitespace));
    }
}
