//! Fixture-tree tests: every lint is exercised end-to-end through
//! [`extradeep_analyze::analyze_tree`] on a real on-disk tree — one true
//! positive and one allowlisted negative per lint — plus a ratchet
//! round-trip through actual baseline files.

use extradeep_analyze::baseline::Baseline;
use extradeep_analyze::{analyze_tree, analyze_tree_cached, compare_to_baseline};
use std::path::PathBuf;

/// A throwaway workspace-shaped tree under the system temp dir.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root = std::env::temp_dir().join(format!(
            "extradeep-analyze-fixture-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        Fixture { root }
    }

    fn write(&self, rel: &str, source: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, source).unwrap();
    }

    fn analyze(&self) -> extradeep_analyze::AnalysisResult {
        analyze_tree(&self.root).unwrap()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

/// (lint, fixture path, violating line, allowlisted line)
const CASES: &[(&str, &str, &str, &str)] = &[
    (
        "panic-on-data-path",
        "crates/model/src/fix.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() } // analyze:allow(panic-on-data-path) invariant: caller checked\n",
    ),
    (
        "nan-unsafe-ordering",
        "crates/core/src/fix.rs",
        "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
        "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); } // analyze:allow(nan-unsafe-ordering) inputs validated finite\n",
    ),
    (
        "nondeterministic-iteration",
        "crates/core/src/fix.rs",
        "use std::collections::HashMap;\n",
        "use std::collections::HashMap; // analyze:allow(nondeterministic-iteration) lookup-only, never iterated\n",
    ),
    (
        "unseeded-rng",
        "crates/sim/src/fix.rs",
        "fn f() { let _r = rand::thread_rng(); }\n",
        "fn f() { let _r = rand::thread_rng(); } // analyze:allow(unseeded-rng) jitter only, not replayed\n",
    ),
    (
        "raw-duration-arith",
        "crates/sim/src/fix.rs",
        "fn f(total_ns: u64) -> f64 { total_ns as f64 * 1e-9 }\n",
        "fn f(total_ns: u64) -> f64 { total_ns as f64 * 1e-9 } // analyze:allow(raw-duration-arith) perf-critical inner loop\n",
    ),
    (
        "hot-path-alloc",
        "crates/model/src/fix.rs",
        "fn search_shapes(n: usize) { for i in 0..n { let v = vec![i]; use_it(&v); } }\n",
        "fn search_shapes(n: usize) { for i in 0..n { let v = vec![i]; use_it(&v); } } // analyze:allow(hot-path-alloc) scratch is reused by the callee\n",
    ),
    (
        "swallowed-result",
        "crates/obs/src/fix.rs",
        "fn f() { let _ = std::fs::remove_file(\"x\"); }\n",
        "fn f() { let _ = std::fs::remove_file(\"x\"); } // analyze:allow(swallowed-result) best-effort cleanup\n",
    ),
    (
        "blocking-in-worker",
        "crates/core/src/fix.rs",
        "fn f(v: &[u64]) { v.par_iter().for_each(|ms| std::thread::sleep(Duration::from_millis(*ms))); }\n",
        "fn f(v: &[u64]) { v.par_iter().for_each(|ms| std::thread::sleep(Duration::from_millis(*ms))); } // analyze:allow(blocking-in-worker) throttle test shim\n",
    ),
];

#[test]
fn every_lint_has_a_true_positive_through_the_tree_walk() {
    for (lint, path, bad, _) in CASES {
        let fix = Fixture::new(&format!("tp-{lint}"));
        fix.write(path, bad);
        let result = fix.analyze();
        assert_eq!(result.files_scanned, 1, "{lint}");
        let hits: Vec<_> = result
            .violations
            .iter()
            .filter(|v| v.lint == *lint)
            .collect();
        assert_eq!(hits.len(), 1, "{lint}: expected one finding in {path}");
        assert_eq!(hits[0].path, *path, "{lint}");
        assert_eq!(hits[0].line, 1, "{lint}: finding should carry the line");
        assert!(result.unused_allows.is_empty(), "{lint}");
    }
}

#[test]
fn every_lint_has_an_allowlisted_negative() {
    for (lint, path, _, allowed) in CASES {
        let fix = Fixture::new(&format!("allow-{lint}"));
        fix.write(path, allowed);
        let result = fix.analyze();
        assert!(
            result.violations.iter().all(|v| v.lint != *lint),
            "{lint}: allow directive must suppress the finding"
        );
        assert_eq!(
            result
                .suppressed
                .iter()
                .filter(|s| s.violation.lint == *lint)
                .count(),
            1,
            "{lint}: suppression must be recorded, not dropped"
        );
        assert!(result.unused_allows.is_empty(), "{lint}: allow was used");
    }
}

#[test]
fn ratchet_round_trips_through_baseline_files() {
    let fix = Fixture::new("ratchet");
    fix.write(
        "crates/model/src/debt.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let first = fix.analyze();
    assert_eq!(first.violations.len(), 1);

    // Freeze the debt, write it to disk, read it back: the frozen run passes.
    let baseline_path = fix.root.join("analyze-baseline.json");
    let frozen = Baseline::from_violations(&first.violations);
    std::fs::write(&baseline_path, frozen.to_json()).unwrap();
    let reloaded = Baseline::from_json(&std::fs::read_to_string(&baseline_path).unwrap()).unwrap();
    assert_eq!(reloaded, frozen);
    let cmp = compare_to_baseline(&first, Some(&reloaded));
    assert!(cmp.regressions.is_empty(), "frozen debt must pass");
    assert!(cmp.improvements.is_empty());

    // New debt in another file is a regression even with old debt frozen.
    fix.write(
        "crates/agg/src/new_debt.rs",
        "fn g() { panic!(\"data-dependent\"); }\n",
    );
    let second = fix.analyze();
    let cmp = compare_to_baseline(&second, Some(&reloaded));
    assert_eq!(cmp.regressions.len(), 1);
    assert_eq!(cmp.regressions[0].path, "crates/agg/src/new_debt.rs");

    // Fixing the original debt shows up as an improvement, never a failure.
    fix.write("crates/model/src/debt.rs", "fn f() {}\n");
    fix.write("crates/agg/src/new_debt.rs", "fn g() {}\n");
    let third = fix.analyze();
    let cmp = compare_to_baseline(&third, Some(&reloaded));
    assert!(cmp.regressions.is_empty());
    assert_eq!(cmp.improvements.len(), 1);
    assert_eq!(cmp.improvements[0].current, 0);
}

#[test]
fn lock_order_three_node_cycle_reports_the_full_chain_per_edge() {
    let fix = Fixture::new("lock-cycle");
    fix.write(
        "crates/obs/src/state.rs",
        "pub struct S { pub a: Mutex<u32>, pub b: Mutex<u32>, pub c: Mutex<u32> }\n",
    );
    fix.write(
        "crates/obs/src/ab.rs",
        "fn ab(s: &S) { let g = s.a.lock(); s.b.lock(); }\n",
    );
    fix.write(
        "crates/obs/src/bc.rs",
        "fn bc(s: &S) { let g = s.b.lock(); s.c.lock(); }\n",
    );
    fix.write(
        "crates/obs/src/ca.rs",
        "fn ca(s: &S) { let g = s.c.lock(); s.a.lock(); }\n",
    );
    let result = fix.analyze();
    let hits: Vec<_> = result
        .violations
        .iter()
        .filter(|v| v.lint == "lock-order")
        .collect();
    assert_eq!(
        hits.len(),
        3,
        "one violation per edge of the cycle: {hits:?}"
    );
    for h in &hits {
        assert!(
            h.message.contains("a -> b -> c -> a"),
            "diagnostic must print the whole conflicting chain: {}",
            h.message
        );
        assert!(
            h.message.contains("ab.rs")
                && h.message.contains("bc.rs")
                && h.message.contains("ca.rs"),
            "chain must name every acquisition site: {}",
            h.message
        );
    }
}

#[test]
fn lock_order_consistent_ordering_is_clean() {
    let fix = Fixture::new("lock-clean");
    fix.write(
        "crates/obs/src/state.rs",
        "pub struct S { pub a: Mutex<u32>, pub b: Mutex<u32>, pub c: Mutex<u32> }\n",
    );
    // Every function takes the locks in the same global order: a, b, c.
    fix.write(
        "crates/obs/src/ab.rs",
        "fn ab(s: &S) { let g = s.a.lock(); s.b.lock(); }\n",
    );
    fix.write(
        "crates/obs/src/ac.rs",
        "fn ac(s: &S) { let g = s.a.lock(); s.c.lock(); }\n",
    );
    fix.write(
        "crates/obs/src/bc.rs",
        "fn bc(s: &S) { let g = s.b.lock(); s.c.lock(); }\n",
    );
    let result = fix.analyze();
    assert!(
        result.violations.iter().all(|v| v.lint != "lock-order"),
        "a consistent acquisition order must not be flagged: {:?}",
        result.violations
    );
}

#[test]
fn warm_cache_run_skips_unchanged_files_and_matches_cold_results() {
    let fix = Fixture::new("cache");
    fix.write(
        "crates/model/src/one.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    fix.write(
        "crates/model/src/two.rs",
        "fn g(x: Option<u32>) -> u32 { x.unwrap() } // analyze:allow(panic-on-data-path) startup only\n",
    );
    fix.write("crates/core/src/three.rs", "fn ok() {}\n");
    let cache = fix.root.join("analyze-cache.json");

    let cold = analyze_tree_cached(&fix.root, Some(&cache)).unwrap();
    assert_eq!(cold.files_from_cache, 0);
    assert_eq!(cold.files_scanned, 3);
    assert!(cache.is_file(), "sidecar written after the run");

    let warm = analyze_tree_cached(&fix.root, Some(&cache)).unwrap();
    assert_eq!(
        warm.files_from_cache, warm.files_scanned,
        "unchanged tree must be fully cache-served"
    );
    assert_eq!(cold.violations, warm.violations);
    assert_eq!(cold.suppressed.len(), warm.suppressed.len());
    assert_eq!(cold.unused_allows, warm.unused_allows);

    // Touch one file: only it re-lexes, and its new finding appears.
    fix.write(
        "crates/core/src/three.rs",
        "fn ok() { let _ = std::fs::remove_file(\"x\"); }\n",
    );
    let third = analyze_tree_cached(&fix.root, Some(&cache)).unwrap();
    assert_eq!(third.files_from_cache, third.files_scanned - 1);
    assert!(third
        .violations
        .iter()
        .any(|v| v.lint == "swallowed-result" && v.path == "crates/core/src/three.rs"));
}

#[test]
fn tree_walk_skips_tests_and_target_directories() {
    let fix = Fixture::new("skips");
    // Integration-test trees are all-test code: no data-path findings.
    fix.write(
        "crates/model/tests/it.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    // Build artifacts are never scanned at all.
    fix.write(
        "target/debug/build/gen.rs",
        "fn f() { let _ = std::collections::HashMap::<u32, u32>::new(); }\n",
    );
    let result = fix.analyze();
    assert_eq!(result.files_scanned, 1);
    assert!(result.violations.is_empty());
}
