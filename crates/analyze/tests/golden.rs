//! Golden equivalence: the token engine must reproduce the frozen v1
//! line-state-machine byte-for-byte on the five legacy lints, over the
//! *real* workspace — not synthetic fixtures. Any divergence here means
//! the lexer rewrite changed enforcement semantics.

use extradeep_analyze::legacy::from_source_legacy;
use extradeep_analyze::lints::check_file_v1;
use extradeep_analyze::source::SourceFile;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        return PathBuf::from(dir).join("../..").canonicalize().unwrap();
    }
    let cwd = std::env::current_dir().unwrap();
    cwd.ancestors()
        .find(|d| d.join("analyze-baseline.json").is_file())
        .expect("workspace root with analyze-baseline.json not found")
        .to_path_buf()
}

/// Collects every `.rs` file under `root`, skipping the same directories the
/// analyzer's own tree walk skips, as workspace-relative paths.
fn rust_files(root: &Path) -> Vec<PathBuf> {
    const SKIP: &[&str] = &["target", ".git", ".github", "node_modules"];
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(_) => return,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP.contains(&name.as_ref()) && !name.starts_with('.') {
                    walk(&path, out);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    let mut out = Vec::new();
    walk(root, &mut out);
    out.sort();
    out
}

#[test]
fn legacy_lints_are_identical_between_engines_over_the_workspace() {
    let root = workspace_root();
    let files = rust_files(&root);
    assert!(files.len() > 50, "walk found the workspace sources");
    let mut compared = 0usize;
    for abs in &files {
        let rel = abs
            .strip_prefix(&root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        let src = match std::fs::read_to_string(abs) {
            Ok(s) => s,
            Err(_) => continue, // non-UTF-8: neither engine scans it
        };
        let old = from_source_legacy(&rel, &src);
        let new = SourceFile::from_source(&rel, &src);

        let old_violations = check_file_v1(&old);
        let new_violations = check_file_v1(&new);
        assert_eq!(
            old_violations, new_violations,
            "{rel}: the five v1 lints must agree between engines"
        );

        assert_eq!(old.lines.len(), new.lines.len(), "{rel}");
        for (l, m) in old.lines.iter().zip(new.lines.iter()) {
            assert_eq!(
                l.in_test_code, m.in_test_code,
                "{rel}:{} test-code classification diverged",
                l.number
            );
            assert_eq!(
                l.allows, m.allows,
                "{rel}:{} allow-directive parse diverged",
                l.number
            );
        }
        compared += 1;
    }
    assert!(compared > 50, "compared only {compared} files");
}

// Scrubbed *text* is deliberately not diffed at workspace scale: the v1
// scrubber has cosmetic quirks the lexer fixes (it leaves a residual tick
// after an escaped `'\''` char literal and strands the `b` of `b'\n'`
// byte-chars) that no lint pattern ever matched on. The per-line `allows`
// and `in_test_code` comparisons above, plus the full violation-set
// equality, pin everything the scrub feeds into enforcement.
