//! The ratchet baseline: existing debt is frozen per `(lint, file)`, new
//! violations fail, and improvements invite a re-ratchet.
//!
//! Semantics: a violation is *new* — and fails CI — when the current count
//! for its `(lint, file)` pair exceeds the committed baseline count. A file
//! absent from the baseline has a baseline of zero, so new files start
//! clean. Counts below the baseline are reported as improvements; running
//! with `--update-baseline` rewrites the file so the ratchet only ever
//! tightens.

use crate::json::Json;
use crate::lints::Violation;
use std::collections::BTreeMap;

/// Committed debt: `lint -> file -> count`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    pub counts: BTreeMap<String, BTreeMap<String, u64>>,
}

/// One `(lint, file)` pair whose current count differs from the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    pub lint: String,
    pub path: String,
    pub baseline: u64,
    pub current: u64,
}

/// Outcome of comparing a run against the baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Pairs over budget — these fail the run.
    pub regressions: Vec<Delta>,
    /// Pairs under budget — candidates for `--update-baseline`.
    pub improvements: Vec<Delta>,
}

impl Baseline {
    /// Builds a baseline freezing exactly the given violations.
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for v in violations {
            *counts
                .entry(v.lint.to_string())
                .or_default()
                .entry(v.path.clone())
                .or_default() += 1;
        }
        Baseline { counts }
    }

    pub fn total(&self) -> u64 {
        self.counts.values().flat_map(|m| m.values()).sum()
    }

    /// Total frozen count for one lint.
    pub fn lint_total(&self, lint: &str) -> u64 {
        self.counts.get(lint).map(|m| m.values().sum()).unwrap_or(0)
    }

    /// Compares current violations against the ratchet.
    pub fn compare(&self, violations: &[Violation]) -> Comparison {
        let current = Baseline::from_violations(violations);
        let mut cmp = Comparison::default();
        // Every (lint, path) pair present on either side.
        let mut pairs: Vec<(&str, &str)> = Vec::new();
        for (lint, files) in self.counts.iter().chain(current.counts.iter()) {
            for path in files.keys() {
                pairs.push((lint, path));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        for (lint, path) in pairs {
            let base = self.count(lint, path);
            let now = current.count(lint, path);
            let delta = Delta {
                lint: lint.to_string(),
                path: path.to_string(),
                baseline: base,
                current: now,
            };
            match now.cmp(&base) {
                std::cmp::Ordering::Greater => cmp.regressions.push(delta),
                std::cmp::Ordering::Less => cmp.improvements.push(delta),
                std::cmp::Ordering::Equal => {}
            }
        }
        cmp
    }

    fn count(&self, lint: &str, path: &str) -> u64 {
        self.counts
            .get(lint)
            .and_then(|m| m.get(path))
            .copied()
            .unwrap_or(0)
    }

    /// Renders the committed `analyze-baseline.json` document.
    pub fn to_json(&self) -> String {
        let counts = Json::Obj(
            self.counts
                .iter()
                .map(|(lint, files)| {
                    (
                        lint.clone(),
                        Json::Obj(
                            files
                                .iter()
                                .filter(|(_, &n)| n > 0)
                                .map(|(path, &n)| (path.clone(), Json::Num(n as f64)))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        Json::Obj(BTreeMap::from([
            ("version".to_string(), Json::Num(1.0)),
            ("counts".to_string(), counts),
        ]))
        .render_pretty()
    }

    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let doc = Json::parse(text)?;
        let obj = doc.as_obj().ok_or("baseline: top level is not an object")?;
        match obj.get("version").and_then(Json::as_num) {
            Some(v) if v == 1.0 => {}
            other => return Err(format!("baseline: unsupported version {other:?}")),
        }
        let counts_obj = obj
            .get("counts")
            .and_then(Json::as_obj)
            .ok_or("baseline: missing 'counts' object")?;
        let mut counts = BTreeMap::new();
        for (lint, files) in counts_obj {
            let files_obj = files
                .as_obj()
                .ok_or_else(|| format!("baseline: counts[{lint}] is not an object"))?;
            let mut per_file = BTreeMap::new();
            for (path, n) in files_obj {
                let n = n
                    .as_num()
                    .ok_or_else(|| format!("baseline: counts[{lint}][{path}] is not a number"))?;
                if n < 0.0 || n.fract() != 0.0 {
                    return Err(format!(
                        "baseline: counts[{lint}][{path}] = {n} is not a non-negative integer"
                    ));
                }
                per_file.insert(path.clone(), n as u64);
            }
            counts.insert(lint.clone(), per_file);
        }
        Ok(Baseline { counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viol(lint: &'static str, path: &str) -> Violation {
        Violation {
            lint,
            path: path.to_string(),
            line: 1,
            message: String::new(),
            snippet: String::new(),
        }
    }

    #[test]
    fn json_round_trip() {
        let base = Baseline::from_violations(&[
            viol("panic-on-data-path", "crates/model/src/a.rs"),
            viol("panic-on-data-path", "crates/model/src/a.rs"),
            viol("raw-duration-arith", "crates/sim/src/b.rs"),
        ]);
        let parsed = Baseline::from_json(&base.to_json()).unwrap();
        assert_eq!(base, parsed);
        assert_eq!(parsed.total(), 3);
        assert_eq!(parsed.lint_total("panic-on-data-path"), 2);
    }

    #[test]
    fn ratchet_flags_only_over_budget_pairs() {
        let base = Baseline::from_violations(&[
            viol("panic-on-data-path", "a.rs"),
            viol("panic-on-data-path", "a.rs"),
            viol("raw-duration-arith", "b.rs"),
        ]);
        // a.rs improves to 1; c.rs is brand-new debt.
        let now = [
            viol("panic-on-data-path", "a.rs"),
            viol("panic-on-data-path", "c.rs"),
            viol("raw-duration-arith", "b.rs"),
        ];
        let cmp = base.compare(&now);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].path, "c.rs");
        assert_eq!(cmp.regressions[0].current, 1);
        assert_eq!(cmp.regressions[0].baseline, 0);
        assert_eq!(cmp.improvements.len(), 1);
        assert_eq!(cmp.improvements[0].path, "a.rs");
    }

    #[test]
    fn empty_baseline_means_everything_is_new() {
        let cmp = Baseline::default().compare(&[viol("unseeded-rng", "x.rs")]);
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.improvements.is_empty());
    }

    #[test]
    fn malformed_baseline_is_rejected() {
        assert!(Baseline::from_json("[]").is_err());
        assert!(Baseline::from_json(r#"{"version": 2, "counts": {}}"#).is_err());
        assert!(Baseline::from_json(r#"{"version": 1, "counts": {"l": {"f": -1}}}"#).is_err());
    }
}
