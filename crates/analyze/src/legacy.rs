//! The v1 line-state-machine scrubber, frozen as an equivalence oracle.
//!
//! The token engine in [`crate::source`] replaced this code, but the five
//! original lints must keep producing byte-identical violation sets. A
//! golden test (`tests/golden.rs`) runs both engines over the real
//! workspace and diffs the results; keeping the old scrubber here makes
//! that comparison honest instead of self-referential.

use crate::source::{assemble, SourceFile};
use crate::tree::FileTree;

#[derive(Clone, Copy, PartialEq)]
enum ScrubState {
    Code,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Scrubs one physical line given the entry state; returns the scrubbed text,
/// the exit state, and the text of any `//` line comment on the line.
fn scrub_line(line: &str, mut state: ScrubState) -> (String, ScrubState, Option<String>) {
    let chars: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut comment: Option<String> = None;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            ScrubState::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = ScrubState::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth > 1 {
                        ScrubState::BlockComment(depth - 1)
                    } else {
                        ScrubState::Code
                    };
                    i += 2;
                } else {
                    i += 1;
                }
            }
            ScrubState::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    state = ScrubState::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    i += 1;
                }
            }
            ScrubState::RawStr(hashes) => {
                if c == '"' {
                    let closes = (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closes {
                        state = ScrubState::Code;
                        out.push(' ');
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                i += 1;
            }
            ScrubState::Code => {
                if c == '/' && next == Some('/') {
                    // Line comment: capture its text for allow parsing.
                    // Doc comments (`///`, `//!`) are prose, not directives —
                    // they may *mention* the allow marker without meaning it.
                    let is_doc = matches!(chars.get(i + 2), Some('/' | '!'));
                    if !is_doc {
                        comment = Some(chars[i + 2..].iter().collect());
                    }
                    break;
                }
                if c == '/' && next == Some('*') {
                    state = ScrubState::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = ScrubState::Str;
                    out.push(' ');
                    i += 1;
                    continue;
                }
                // Raw / byte string starts: r", r#", br", b".
                let prev_is_ident =
                    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                if !prev_is_ident && (c == 'r' || c == 'b') {
                    if let Some((raw_form, hashes, consumed)) = raw_string_open(&chars[i..]) {
                        // `b"..."` is an ordinary (escaped) string; `r`-forms
                        // are raw and close only on `"` + matching hashes.
                        state = if raw_form {
                            ScrubState::RawStr(hashes)
                        } else {
                            ScrubState::Str
                        };
                        out.push(' ');
                        i += consumed;
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal vs lifetime.
                    if next == Some('\\') {
                        // Escaped char literal: skip to closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        out.push(' ');
                        i = j + 1;
                        continue;
                    }
                    if chars.get(i + 2) == Some(&'\'') && next.is_some() {
                        out.push(' ');
                        i += 3;
                        continue;
                    }
                    // Lifetime: keep the tick so code shape survives.
                    out.push(c);
                    i += 1;
                    continue;
                }
                out.push(c);
                i += 1;
            }
        }
    }
    (out, state, comment)
}

/// Detects `r"`, `r#"`, `br"`, `b"` etc. at the start of `chars`. Returns
/// `(is_raw_form, hash_count, chars_consumed_through_opening_quote)`.
fn raw_string_open(chars: &[char]) -> Option<(bool, u32, usize)> {
    let mut i = 0;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    let rawish = chars.get(i) == Some(&'r');
    if rawish {
        i += 1;
    }
    if i == 0 {
        return None;
    }
    let mut hashes = 0u32;
    while chars.get(i + hashes as usize) == Some(&'#') {
        hashes += 1;
    }
    let q = i + hashes as usize;
    if chars.get(q) == Some(&'"') && (rawish || hashes == 0) {
        Some((rawish, hashes, q + 1))
    } else {
        None
    }
}

/// Parses a file with the legacy scrubber. The result carries no tokens and
/// an empty tree, so only the line-based (v1) lints are meaningful on it.
pub fn from_source_legacy(path: &str, source: &str) -> SourceFile {
    let mut state = ScrubState::Code;
    let mut scrubbed: Vec<String> = Vec::new();
    let mut comments: Vec<Option<String>> = Vec::new();
    for raw in source.lines() {
        let (line_scrubbed, next_state, comment) = scrub_line(raw, state);
        state = next_state;
        scrubbed.push(line_scrubbed);
        comments.push(comment);
    }
    assemble(
        path,
        source,
        scrubbed,
        comments,
        Vec::new(),
        FileTree::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_engine_still_scrubs() {
        let f = from_source_legacy(
            "crates/x/src/lib.rs",
            "let s = \"a.unwrap()\"; // comment\nlet t = x.unwrap();\n",
        );
        assert!(!f.lines[0].scrubbed.contains("unwrap"));
        assert!(f.lines[1].scrubbed.contains(".unwrap()"));
        assert!(f.tokens.is_empty());
    }

    #[test]
    fn both_engines_agree_on_a_tricky_file() {
        let src = "let s = r#\"has .unwrap() and // analyze:allow(x) inside\"#;\n\
                   /* block /* nested */ still */ fn f() { g.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { HashMap::new(); }\n}\n";
        let legacy = from_source_legacy("crates/model/src/a.rs", src);
        let modern = SourceFile::from_source("crates/model/src/a.rs", src);
        for (l, m) in legacy.lines.iter().zip(modern.lines.iter()) {
            assert_eq!(l.in_test_code, m.in_test_code, "line {}", l.number);
            assert_eq!(l.allows, m.allows, "line {}", l.number);
            // Scrubbed text may differ in whitespace, never in code atoms.
            let squash = |s: &str| s.split_whitespace().collect::<Vec<_>>().join(" ");
            assert_eq!(
                squash(&l.scrubbed),
                squash(&m.scrubbed),
                "line {}",
                l.number
            );
        }
    }
}
