//! `extradeep-analyze`: project-invariant static analysis for the Extra-Deep
//! workspace.
//!
//! The engine parses every Rust file in the workspace (a hand-rolled lexical
//! model — see [`source`] — rather than a full AST, so it runs with zero
//! dependencies in offline builds), applies the lint catalog in [`lints`],
//! honours inline `// analyze:allow(<lint>) <justification>` suppressions,
//! and compares the surviving findings against the committed ratchet
//! baseline ([`baseline`]): frozen debt passes, anything new fails CI.
//!
//! Violation and file counts are surfaced through the `extradeep-obs`
//! counter layer so the self-profiling pipeline can track lint debt like any
//! other metric.

pub mod baseline;
pub mod json;
pub mod lints;
pub mod source;

use baseline::{Baseline, Comparison};
use json::Json;
use lints::Violation;
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One suppressed finding with the directive that silenced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    pub violation: Violation,
    pub justification: String,
}

/// A directive that silenced nothing — usually a typo'd lint name or code
/// that was since fixed; reported so stale allows get cleaned up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnusedAllow {
    pub path: String,
    pub line: usize,
    pub lint: String,
}

/// The outcome of analyzing a set of files.
#[derive(Debug, Clone, Default)]
pub struct AnalysisResult {
    /// Findings that survived suppression, sorted by (path, line, lint).
    pub violations: Vec<Violation>,
    pub suppressed: Vec<Suppressed>,
    pub unused_allows: Vec<UnusedAllow>,
    pub files_scanned: usize,
}

impl AnalysisResult {
    /// Per-lint counts of active violations.
    pub fn counts_by_lint(&self) -> BTreeMap<&'static str, u64> {
        let mut map: BTreeMap<&'static str, u64> = BTreeMap::new();
        for lint in lints::all_lints() {
            map.insert(lint.name, 0);
        }
        for v in &self.violations {
            *map.entry(v.lint).or_insert(0) += 1;
        }
        map
    }

    /// Publishes scan statistics through the obs counter layer.
    pub fn publish_counters(&self) {
        extradeep_obs::counter("analyze.files_scanned").add(self.files_scanned as u64);
        extradeep_obs::counter("analyze.violations").add(self.violations.len() as u64);
        extradeep_obs::counter("analyze.suppressed").add(self.suppressed.len() as u64);
        extradeep_obs::counter("analyze.unused_allows").add(self.unused_allows.len() as u64);
        for v in &self.violations {
            // Counter names must be 'static; match back onto the registry.
            let name = match v.lint {
                lints::PANIC_ON_DATA_PATH => "analyze.violations.panic_on_data_path",
                lints::NAN_UNSAFE_ORDERING => "analyze.violations.nan_unsafe_ordering",
                lints::NONDETERMINISTIC_ITERATION => {
                    "analyze.violations.nondeterministic_iteration"
                }
                lints::UNSEEDED_RNG => "analyze.violations.unseeded_rng",
                lints::RAW_DURATION_ARITH => "analyze.violations.raw_duration_arith",
                _ => "analyze.violations.other",
            };
            extradeep_obs::counter(name).incr();
        }
    }
}

/// Analyzes one already-parsed file, applying suppressions.
pub fn analyze_file(file: &SourceFile, result: &mut AnalysisResult) {
    let _span = extradeep_obs::span("analyze.file");
    result.files_scanned += 1;
    let findings = lints::check_file(file);
    // An allow is "used" once it silences at least one finding.
    let mut used: Vec<(usize, &str)> = Vec::new();
    for v in findings {
        let line = &file.lines[v
            .line
            .checked_sub(1)
            .unwrap_or_default()
            .min(file.lines.len().saturating_sub(1))];
        match line.allows.iter().find(|a| a.lint == v.lint) {
            Some(allow) => {
                used.push((allow.line, v.lint));
                result.suppressed.push(Suppressed {
                    justification: allow.justification.clone(),
                    violation: v,
                });
            }
            None => result.violations.push(v),
        }
    }
    // Every allow lives on exactly one line (standalone directives are moved,
    // not copied, onto the code line they cover), so a plain sweep finds the
    // unused ones without double counting.
    for line in &file.lines {
        for allow in &line.allows {
            if !used
                .iter()
                .any(|(l, n)| *l == allow.line && *n == allow.lint)
            {
                result.unused_allows.push(UnusedAllow {
                    path: file.path.clone(),
                    line: allow.line,
                    lint: allow.lint.clone(),
                });
            }
        }
    }
}

/// Walks the workspace and analyzes every `.rs` file. Paths are reported
/// relative to `root` with `/` separators; the walk order is sorted so the
/// report is deterministic.
pub fn analyze_tree(root: &Path) -> std::io::Result<AnalysisResult> {
    let _span = extradeep_obs::span("analyze.tree");
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files)?;
    files.sort();
    let mut result = AnalysisResult::default();
    for rel in &files {
        let source_text = std::fs::read_to_string(root.join(rel))?;
        let file = SourceFile::from_source(&rel.replace('\\', "/"), &source_text);
        analyze_file(&file, &mut result);
    }
    result
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    result
        .unused_allows
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(result)
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rust_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Renders the human-readable report.
pub fn render_human(result: &AnalysisResult, comparison: &Comparison, verbose: bool) -> String {
    let mut out = String::new();
    for v in &result.violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            v.path, v.line, v.lint, v.message, v.snippet
        ));
    }
    if verbose {
        for s in &result.suppressed {
            let v = &s.violation;
            out.push_str(&format!(
                "{}:{}: [{}] suppressed: {}\n",
                v.path,
                v.line,
                v.lint,
                if s.justification.is_empty() {
                    "(no justification)"
                } else {
                    &s.justification
                }
            ));
        }
    }
    for u in &result.unused_allows {
        out.push_str(&format!(
            "{}:{}: unused `analyze:allow({})` — remove or fix the lint name\n",
            u.path, u.line, u.lint
        ));
    }
    out.push_str(&format!(
        "\n{} file(s) scanned, {} violation(s) ({} suppressed), {} unused allow(s)\n",
        result.files_scanned,
        result.violations.len(),
        result.suppressed.len(),
        result.unused_allows.len()
    ));
    for (lint, count) in result.counts_by_lint() {
        out.push_str(&format!("  {lint}: {count}\n"));
    }
    if !comparison.regressions.is_empty() {
        out.push_str("\nNEW violations over the ratchet baseline:\n");
        for d in &comparison.regressions {
            out.push_str(&format!(
                "  {} in {}: {} (baseline {})\n",
                d.lint, d.path, d.current, d.baseline
            ));
        }
    }
    if !comparison.improvements.is_empty() {
        out.push_str("\nImprovements vs baseline (re-ratchet with --update-baseline):\n");
        for d in &comparison.improvements {
            out.push_str(&format!(
                "  {} in {}: {} (baseline {})\n",
                d.lint, d.path, d.current, d.baseline
            ));
        }
    }
    out
}

/// Renders the machine-readable report.
pub fn render_json(result: &AnalysisResult, comparison: &Comparison) -> String {
    let violation_json = |v: &Violation| {
        Json::Obj(BTreeMap::from([
            ("lint".to_string(), Json::Str(v.lint.to_string())),
            ("path".to_string(), Json::Str(v.path.clone())),
            ("line".to_string(), Json::Num(v.line as f64)),
            ("message".to_string(), Json::Str(v.message.clone())),
        ]))
    };
    let counts = Json::Obj(
        result
            .counts_by_lint()
            .into_iter()
            .map(|(k, n)| (k.to_string(), Json::Num(n as f64)))
            .collect(),
    );
    let regressions = Json::Arr(
        comparison
            .regressions
            .iter()
            .map(|d| {
                Json::Obj(BTreeMap::from([
                    ("lint".to_string(), Json::Str(d.lint.clone())),
                    ("path".to_string(), Json::Str(d.path.clone())),
                    ("baseline".to_string(), Json::Num(d.baseline as f64)),
                    ("current".to_string(), Json::Num(d.current as f64)),
                ]))
            })
            .collect(),
    );
    Json::Obj(BTreeMap::from([
        (
            "files_scanned".to_string(),
            Json::Num(result.files_scanned as f64),
        ),
        (
            "violations".to_string(),
            Json::Arr(result.violations.iter().map(violation_json).collect()),
        ),
        ("counts".to_string(), counts),
        (
            "suppressed".to_string(),
            Json::Num(result.suppressed.len() as f64),
        ),
        (
            "unused_allows".to_string(),
            Json::Num(result.unused_allows.len() as f64),
        ),
        ("new_violations".to_string(), regressions),
        (
            "ok".to_string(),
            Json::Bool(comparison.regressions.is_empty()),
        ),
    ]))
    .render_pretty()
}

/// Renders a perf-history snapshot (`bench/history.rs` conventions: flat
/// records keyed by `name`; bare counts are informational metrics).
pub fn render_bench_json(result: &AnalysisResult) -> String {
    let mut records = vec![Json::Obj(BTreeMap::from([
        (
            "name".to_string(),
            Json::Str("analyze_violations_total".to_string()),
        ),
        (
            "value".to_string(),
            Json::Num(result.violations.len() as f64),
        ),
    ]))];
    for (lint, count) in result.counts_by_lint() {
        records.push(Json::Obj(BTreeMap::from([
            (
                "name".to_string(),
                Json::Str(format!("analyze_violations_{}", lint.replace('-', "_"))),
            ),
            ("value".to_string(), Json::Num(count as f64)),
        ])));
    }
    Json::Arr(records).render_pretty()
}

/// Compares against a baseline, treating a missing baseline as empty (every
/// violation is then new).
pub fn compare_to_baseline(result: &AnalysisResult, baseline: Option<&Baseline>) -> Comparison {
    static EMPTY: Baseline = Baseline {
        counts: BTreeMap::new(),
    };
    baseline.unwrap_or(&EMPTY).compare(&result.violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_snippet(path: &str, src: &str) -> AnalysisResult {
        let file = SourceFile::from_source(path, src);
        let mut result = AnalysisResult::default();
        analyze_file(&file, &mut result);
        result
    }

    #[test]
    fn allow_suppresses_and_records_justification() {
        let r = analyze_snippet(
            "crates/model/src/a.rs",
            "fn f() { x.unwrap(); } // analyze:allow(panic-on-data-path) config parse at startup\n",
        );
        assert!(r.violations.is_empty());
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].justification, "config parse at startup");
        assert!(r.unused_allows.is_empty());
    }

    #[test]
    fn allow_for_wrong_lint_does_not_suppress() {
        let r = analyze_snippet(
            "crates/model/src/a.rs",
            "fn f() { x.unwrap(); } // analyze:allow(unseeded-rng) wrong name\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.unused_allows.len(), 1);
        assert_eq!(r.unused_allows[0].lint, "unseeded-rng");
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let r = analyze_snippet(
            "crates/model/src/a.rs",
            "// analyze:allow(panic-on-data-path): guarded by is_finite above\nfn f() { x.unwrap(); }\n",
        );
        assert!(r.violations.is_empty());
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn counts_by_lint_covers_registry() {
        let r = analyze_snippet("crates/core/src/a.rs", "fn ok() {}\n");
        assert_eq!(r.counts_by_lint().len(), lints::all_lints().len());
        assert!(r.counts_by_lint().values().all(|&n| n == 0));
    }

    #[test]
    fn json_report_is_parseable_and_flags_ok() {
        let r = analyze_snippet("crates/model/src/a.rs", "fn f() { x.unwrap(); }\n");
        let cmp = compare_to_baseline(&r, None);
        let doc = Json::parse(&render_json(&r, &cmp)).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(obj.get("files_scanned").and_then(Json::as_num), Some(1.0));
    }
}
