//! `extradeep-analyze`: project-invariant static analysis for the Extra-Deep
//! workspace.
//!
//! The engine lexes every Rust file with a hand-rolled tokenizer
//! ([`lexer`]), builds a brace-matched item/block tree ([`tree`]), applies
//! the lint catalog in [`lints`] plus the cross-file phases (`hot-path-alloc`
//! reachability, the [`locks`] lock-order graph), honours inline
//! `// analyze:allow(<lint>) <justification>` suppressions, and compares the
//! surviving findings against the committed ratchet baseline ([`baseline`]):
//! frozen debt passes, anything new fails CI.
//!
//! Warm runs reuse the per-file facts from the incremental [`cache`] sidecar
//! and only re-lex changed files; findings can be exported as SARIF 2.1.0
//! ([`sarif`]) for code-scanning upload. The previous line-state-machine
//! scrubber survives in [`legacy`] as an equivalence oracle for the five
//! original lints.
//!
//! Violation and file counts are surfaced through the `extradeep-obs`
//! counter layer so the self-profiling pipeline can track lint debt like any
//! other metric.

pub mod baseline;
pub mod cache;
pub mod json;
pub mod legacy;
pub mod lexer;
pub mod lints;
pub mod locks;
pub mod sarif;
pub mod source;
pub mod tree;

use baseline::{Baseline, Comparison};
use json::Json;
use lints::Violation;
use source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One suppressed finding with the directive that silenced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    pub violation: Violation,
    pub justification: String,
}

/// A directive that silenced nothing — usually a typo'd lint name or code
/// that was since fixed; reported so stale allows get cleaned up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnusedAllow {
    pub path: String,
    pub line: usize,
    pub lint: String,
}

/// The outcome of analyzing a set of files.
#[derive(Debug, Clone, Default)]
pub struct AnalysisResult {
    /// Findings that survived suppression, sorted by (path, line, lint).
    pub violations: Vec<Violation>,
    pub suppressed: Vec<Suppressed>,
    pub unused_allows: Vec<UnusedAllow>,
    pub files_scanned: usize,
    /// How many of `files_scanned` were satisfied from the incremental
    /// cache (content hash unchanged) without re-lexing.
    pub files_from_cache: usize,
}

impl AnalysisResult {
    /// Per-lint counts of active violations.
    pub fn counts_by_lint(&self) -> BTreeMap<&'static str, u64> {
        let mut map: BTreeMap<&'static str, u64> = BTreeMap::new();
        for lint in lints::all_lints() {
            map.insert(lint.name, 0);
        }
        for v in &self.violations {
            *map.entry(v.lint).or_insert(0) += 1;
        }
        map
    }

    /// Publishes scan statistics through the obs counter layer.
    pub fn publish_counters(&self) {
        extradeep_obs::counter("analyze.files_scanned").add(self.files_scanned as u64);
        extradeep_obs::counter("analyze.files_from_cache").add(self.files_from_cache as u64);
        extradeep_obs::counter("analyze.violations").add(self.violations.len() as u64);
        extradeep_obs::counter("analyze.suppressed").add(self.suppressed.len() as u64);
        extradeep_obs::counter("analyze.unused_allows").add(self.unused_allows.len() as u64);
        for v in &self.violations {
            // Counter names must be 'static; match back onto the registry.
            let name = match v.lint {
                lints::PANIC_ON_DATA_PATH => "analyze.violations.panic_on_data_path",
                lints::NAN_UNSAFE_ORDERING => "analyze.violations.nan_unsafe_ordering",
                lints::NONDETERMINISTIC_ITERATION => {
                    "analyze.violations.nondeterministic_iteration"
                }
                lints::UNSEEDED_RNG => "analyze.violations.unseeded_rng",
                lints::RAW_DURATION_ARITH => "analyze.violations.raw_duration_arith",
                lints::HOT_PATH_ALLOC => "analyze.violations.hot_path_alloc",
                lints::SWALLOWED_RESULT => "analyze.violations.swallowed_result",
                lints::BLOCKING_IN_WORKER => "analyze.violations.blocking_in_worker",
                lints::LOCK_ORDER => "analyze.violations.lock_order",
                _ => "analyze.violations.other",
            };
            extradeep_obs::counter(name).incr();
        }
    }
}

/// Builds the cacheable record for one parsed file: pre-suppression per-file
/// findings plus the facts the global phases consume.
pub fn file_record(file: &SourceFile, hash: u64) -> cache::FileRecord {
    let _span = extradeep_obs::span("analyze.file");
    cache::FileRecord {
        hash,
        findings: lints::check_file(file),
        allows: file
            .lines
            .iter()
            .flat_map(|l| l.allows.iter().map(|a| (l.number, a.clone())))
            .collect(),
        hot: lints::hot_path_facts(file),
        locks: locks::lock_facts(file),
    }
}

/// Runs the global phases over the per-file records, applies suppressions,
/// and appends everything to `result`. Cached and freshly-built records are
/// indistinguishable here — the global phases always recompute from the
/// union of facts, so warm results match cold results by construction.
fn finalize(records: &BTreeMap<String, cache::FileRecord>, result: &mut AnalysisResult) {
    let hot: BTreeMap<String, lints::HotPathFacts> = records
        .iter()
        .map(|(p, r)| (p.clone(), r.hot.clone()))
        .collect();
    let lock_facts: BTreeMap<String, locks::LockFacts> = records
        .iter()
        .map(|(p, r)| (p.clone(), r.locks.clone()))
        .collect();
    let mut findings: Vec<Violation> = Vec::new();
    for (path, record) in records {
        for v in &record.findings {
            let mut v = v.clone();
            // Cached findings carry an empty path; re-stamp from the key.
            v.path = path.clone();
            findings.push(v);
        }
    }
    findings.extend(lints::hot_path_violations(&hot));
    findings.extend(locks::lock_order_violations(&lock_facts));
    findings.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    // An allow is "used" once it silences at least one finding; track by the
    // directive's own line so standalone and trailing forms both count.
    let mut used: BTreeSet<(&str, usize, &str)> = BTreeSet::new();
    for v in findings {
        let allow = records.get(&v.path).and_then(|r| {
            r.allows
                .iter()
                .find(|(attached, a)| *attached == v.line && a.lint == v.lint)
                .map(|(_, a)| a)
        });
        match allow {
            Some(allow) => {
                used.insert((v.path_key(records), allow.line, v.lint));
                result.suppressed.push(Suppressed {
                    justification: allow.justification.clone(),
                    violation: v,
                });
            }
            None => result.violations.push(v),
        }
    }
    // Every allow lives on exactly one line (standalone directives are moved,
    // not copied, onto the code line they cover), so a plain sweep finds the
    // unused ones without double counting.
    for (path, record) in records {
        for (_, allow) in &record.allows {
            if !used.contains(&(path.as_str(), allow.line, allow.lint.as_str())) {
                result.unused_allows.push(UnusedAllow {
                    path: path.clone(),
                    line: allow.line,
                    lint: allow.lint.clone(),
                });
            }
        }
    }
    result
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    result
        .unused_allows
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
}

impl Violation {
    /// The records-map key equal to this violation's path — borrowed from
    /// the map so `used` entries outlive the violation itself.
    fn path_key<'a>(&self, records: &'a BTreeMap<String, cache::FileRecord>) -> &'a str {
        records
            .get_key_value(&self.path)
            .map(|(k, _)| k.as_str())
            .unwrap_or("")
    }
}

/// Analyzes a batch of already-parsed files together, so the cross-file
/// lints see every file's facts at once.
pub fn analyze_files(files: &[SourceFile]) -> AnalysisResult {
    let mut records = BTreeMap::new();
    for file in files {
        let hash = cache::fnv1a(file.src.as_bytes());
        records.insert(file.path.clone(), file_record(file, hash));
    }
    let mut result = AnalysisResult {
        files_scanned: files.len(),
        ..AnalysisResult::default()
    };
    finalize(&records, &mut result);
    result
}

/// Analyzes one already-parsed file, applying suppressions. The cross-file
/// lints run over this file's facts alone — use [`analyze_files`] or
/// [`analyze_tree`] to resolve calls and lock edges across files.
pub fn analyze_file(file: &SourceFile, result: &mut AnalysisResult) {
    result.files_scanned += 1;
    let hash = cache::fnv1a(file.src.as_bytes());
    let records = BTreeMap::from([(file.path.clone(), file_record(file, hash))]);
    finalize(&records, result);
}

/// Walks the workspace and analyzes every `.rs` file. Paths are reported
/// relative to `root` with `/` separators; the walk order is sorted so the
/// report is deterministic. Equivalent to [`analyze_tree_cached`] with no
/// sidecar.
pub fn analyze_tree(root: &Path) -> std::io::Result<AnalysisResult> {
    analyze_tree_cached(root, None)
}

/// Walks the workspace with an incremental cache sidecar: files whose
/// content hash matches the sidecar skip lexing entirely and replay their
/// recorded findings and facts. The sidecar is rewritten after the run.
pub fn analyze_tree_cached(
    root: &Path,
    cache_path: Option<&Path>,
) -> std::io::Result<AnalysisResult> {
    let _span = extradeep_obs::span("analyze.tree");
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files)?;
    files.sort();
    let old = cache_path.map(cache::Cache::load).unwrap_or_default();
    let mut records: BTreeMap<String, cache::FileRecord> = BTreeMap::new();
    let mut result = AnalysisResult::default();
    for rel in &files {
        let source_text = std::fs::read_to_string(root.join(rel))?;
        let hash = cache::fnv1a(source_text.as_bytes());
        let record = match old.files.get(rel) {
            Some(cached) if cached.hash == hash => {
                result.files_from_cache += 1;
                cached.clone()
            }
            _ => file_record(&SourceFile::from_source(rel, &source_text), hash),
        };
        records.insert(rel.clone(), record);
    }
    result.files_scanned = files.len();
    finalize(&records, &mut result);
    if let Some(path) = cache_path {
        // Best-effort: an unwritable sidecar slows the next run, nothing else.
        let _ = cache::Cache { files: records }.save(path);
    }
    Ok(result)
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rust_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Exit code the ratchet dictates: regressions fail (1); a clean run or one
/// that only *pays down* debt passes (0). Usage and I/O errors are the
/// binary's own 2 and never come from here.
pub fn ratchet_exit_code(comparison: &Comparison) -> i32 {
    if comparison.regressions.is_empty() {
        0
    } else {
        1
    }
}

/// Renders the human-readable report.
pub fn render_human(result: &AnalysisResult, comparison: &Comparison, verbose: bool) -> String {
    let mut out = String::new();
    for v in &result.violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            v.path, v.line, v.lint, v.message, v.snippet
        ));
    }
    if verbose {
        for s in &result.suppressed {
            let v = &s.violation;
            out.push_str(&format!(
                "{}:{}: [{}] suppressed: {}\n",
                v.path,
                v.line,
                v.lint,
                if s.justification.is_empty() {
                    "(no justification)"
                } else {
                    &s.justification
                }
            ));
        }
    }
    for u in &result.unused_allows {
        out.push_str(&format!(
            "{}:{}: unused `analyze:allow({})` — remove or fix the lint name\n",
            u.path, u.line, u.lint
        ));
    }
    out.push_str(&format!(
        "\n{} file(s) scanned ({} from cache), {} violation(s) ({} suppressed), {} unused allow(s)\n",
        result.files_scanned,
        result.files_from_cache,
        result.violations.len(),
        result.suppressed.len(),
        result.unused_allows.len()
    ));
    for (lint, count) in result.counts_by_lint() {
        out.push_str(&format!("  {lint}: {count}\n"));
    }
    if !comparison.regressions.is_empty() {
        out.push_str("\nNEW violations over the ratchet baseline:\n");
        for d in &comparison.regressions {
            out.push_str(&format!(
                "  {} in {}: {} (baseline {})\n",
                d.lint, d.path, d.current, d.baseline
            ));
        }
    }
    if !comparison.improvements.is_empty() {
        out.push_str("\nDebt paid — counts now below the ratchet baseline:\n");
        out.push_str(&format!(
            "  {:<28} {:<44} {:>8} {:>8}\n",
            "lint", "path", "baseline", "now"
        ));
        for d in &comparison.improvements {
            out.push_str(&format!(
                "  {:<28} {:<44} {:>8} {:>8}\n",
                d.lint, d.path, d.baseline, d.current
            ));
        }
        out.push_str("  run with --update-baseline to lock the new floor in\n");
    }
    out
}

/// Renders the machine-readable report.
pub fn render_json(result: &AnalysisResult, comparison: &Comparison) -> String {
    let violation_json = |v: &Violation| {
        Json::Obj(BTreeMap::from([
            ("lint".to_string(), Json::Str(v.lint.to_string())),
            ("path".to_string(), Json::Str(v.path.clone())),
            ("line".to_string(), Json::Num(v.line as f64)),
            ("message".to_string(), Json::Str(v.message.clone())),
        ]))
    };
    let counts = Json::Obj(
        result
            .counts_by_lint()
            .into_iter()
            .map(|(k, n)| (k.to_string(), Json::Num(n as f64)))
            .collect(),
    );
    let regressions = Json::Arr(
        comparison
            .regressions
            .iter()
            .map(|d| {
                Json::Obj(BTreeMap::from([
                    ("lint".to_string(), Json::Str(d.lint.clone())),
                    ("path".to_string(), Json::Str(d.path.clone())),
                    ("baseline".to_string(), Json::Num(d.baseline as f64)),
                    ("current".to_string(), Json::Num(d.current as f64)),
                ]))
            })
            .collect(),
    );
    Json::Obj(BTreeMap::from([
        (
            "files_scanned".to_string(),
            Json::Num(result.files_scanned as f64),
        ),
        (
            "files_from_cache".to_string(),
            Json::Num(result.files_from_cache as f64),
        ),
        (
            "violations".to_string(),
            Json::Arr(result.violations.iter().map(violation_json).collect()),
        ),
        ("counts".to_string(), counts),
        (
            "suppressed".to_string(),
            Json::Num(result.suppressed.len() as f64),
        ),
        (
            "unused_allows".to_string(),
            Json::Num(result.unused_allows.len() as f64),
        ),
        ("new_violations".to_string(), regressions),
        (
            "ok".to_string(),
            Json::Bool(comparison.regressions.is_empty()),
        ),
    ]))
    .render_pretty()
}

/// Renders the lint catalog as machine-readable metadata (`--list-lints
/// --json`). The CLI help text is generated from the same registry, so the
/// two can never drift.
pub fn render_lints_json() -> String {
    let lints = Json::Arr(
        lints::all_lints()
            .iter()
            .map(|l| {
                Json::Obj(BTreeMap::from([
                    ("name".to_string(), Json::Str(l.name.to_string())),
                    ("summary".to_string(), Json::Str(l.summary.to_string())),
                    (
                        "severity".to_string(),
                        Json::Str(
                            match l.severity {
                                lints::Severity::Error => "error",
                                lints::Severity::Warning => "warning",
                            }
                            .to_string(),
                        ),
                    ),
                    ("autofixable".to_string(), Json::Bool(l.autofixable)),
                ]))
            })
            .collect(),
    );
    Json::Obj(BTreeMap::from([
        ("schema_version".to_string(), Json::Num(1.0)),
        ("lints".to_string(), lints),
    ]))
    .render_pretty()
}

/// Renders a perf-history snapshot (`bench/history.rs` conventions: flat
/// records keyed by `name`; bare counts are informational metrics).
pub fn render_bench_json(result: &AnalysisResult) -> String {
    let mut records = vec![Json::Obj(BTreeMap::from([
        (
            "name".to_string(),
            Json::Str("analyze_violations_total".to_string()),
        ),
        (
            "value".to_string(),
            Json::Num(result.violations.len() as f64),
        ),
    ]))];
    for (lint, count) in result.counts_by_lint() {
        records.push(Json::Obj(BTreeMap::from([
            (
                "name".to_string(),
                Json::Str(format!("analyze_violations_{}", lint.replace('-', "_"))),
            ),
            ("value".to_string(), Json::Num(count as f64)),
        ])));
    }
    Json::Arr(records).render_pretty()
}

/// Compares against a baseline, treating a missing baseline as empty (every
/// violation is then new).
pub fn compare_to_baseline(result: &AnalysisResult, baseline: Option<&Baseline>) -> Comparison {
    static EMPTY: Baseline = Baseline {
        counts: BTreeMap::new(),
    };
    baseline.unwrap_or(&EMPTY).compare(&result.violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use baseline::Delta;

    fn analyze_snippet(path: &str, src: &str) -> AnalysisResult {
        let file = SourceFile::from_source(path, src);
        let mut result = AnalysisResult::default();
        analyze_file(&file, &mut result);
        result
    }

    #[test]
    fn allow_suppresses_and_records_justification() {
        let r = analyze_snippet(
            "crates/model/src/a.rs",
            "fn f() { x.unwrap(); } // analyze:allow(panic-on-data-path) config parse at startup\n",
        );
        assert!(r.violations.is_empty());
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].justification, "config parse at startup");
        assert!(r.unused_allows.is_empty());
    }

    #[test]
    fn allow_for_wrong_lint_does_not_suppress() {
        let r = analyze_snippet(
            "crates/model/src/a.rs",
            "fn f() { x.unwrap(); } // analyze:allow(unseeded-rng) wrong name\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.unused_allows.len(), 1);
        assert_eq!(r.unused_allows[0].lint, "unseeded-rng");
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let r = analyze_snippet(
            "crates/model/src/a.rs",
            "// analyze:allow(panic-on-data-path): guarded by is_finite above\nfn f() { x.unwrap(); }\n",
        );
        assert!(r.violations.is_empty());
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn counts_by_lint_covers_registry() {
        let r = analyze_snippet("crates/core/src/a.rs", "fn ok() {}\n");
        assert_eq!(r.counts_by_lint().len(), lints::all_lints().len());
        assert!(r.counts_by_lint().values().all(|&n| n == 0));
    }

    #[test]
    fn json_report_is_parseable_and_flags_ok() {
        let r = analyze_snippet("crates/model/src/a.rs", "fn f() { x.unwrap(); }\n");
        let cmp = compare_to_baseline(&r, None);
        let doc = Json::parse(&render_json(&r, &cmp)).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(obj.get("files_scanned").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn cross_file_lock_inversion_surfaces_through_analyze_files() {
        let a = SourceFile::from_source(
            "crates/obs/src/a.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             fn f(s: &S) { let g = s.a.lock(); s.b.lock(); }\n",
        );
        let b = SourceFile::from_source(
            "crates/obs/src/b.rs",
            "fn g(s: &S) { let h = s.b.lock(); s.a.lock(); }\n",
        );
        let r = analyze_files(&[a, b]);
        let cycles: Vec<_> = r
            .violations
            .iter()
            .filter(|v| v.lint == lints::LOCK_ORDER)
            .collect();
        assert_eq!(cycles.len(), 2, "one violation per edge of the cycle");
        assert!(
            cycles[0].message.contains("a -> b -> a") || cycles[0].message.contains("b -> a -> b")
        );
    }

    #[test]
    fn global_phase_findings_respect_allows() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   fn f(s: &S) { let g = s.a.lock(); s.b.lock(); }\n\
                   // analyze:allow(lock-order) init order pinned by ctor\n\
                   fn g(s: &S) { let h = s.b.lock(); s.a.lock(); }\n";
        let file = SourceFile::from_source("crates/obs/src/a.rs", src);
        let r = analyze_files(std::slice::from_ref(&file));
        let active = r
            .violations
            .iter()
            .filter(|v| v.lint == lints::LOCK_ORDER)
            .count();
        let quiet = r
            .suppressed
            .iter()
            .filter(|s| s.violation.lint == lints::LOCK_ORDER)
            .count();
        assert_eq!(quiet, 1, "the allowed edge is suppressed");
        assert_eq!(active, 1, "the other edge of the cycle still reports");
    }

    #[test]
    fn ratchet_exit_codes_are_pinned() {
        let worse = Comparison {
            regressions: vec![Delta {
                lint: "panic-on-data-path".to_string(),
                path: "crates/model/src/a.rs".to_string(),
                baseline: 0,
                current: 1,
            }],
            improvements: Vec::new(),
        };
        let better = Comparison {
            regressions: Vec::new(),
            improvements: vec![Delta {
                lint: "panic-on-data-path".to_string(),
                path: "crates/model/src/a.rs".to_string(),
                baseline: 2,
                current: 0,
            }],
        };
        let equal = Comparison {
            regressions: Vec::new(),
            improvements: Vec::new(),
        };
        assert_eq!(ratchet_exit_code(&worse), 1);
        assert_eq!(ratchet_exit_code(&better), 0);
        assert_eq!(ratchet_exit_code(&equal), 0);
        let report = render_human(&AnalysisResult::default(), &better, false);
        assert!(report.contains("Debt paid"));
        assert!(report.contains("--update-baseline"));
    }

    #[test]
    fn lints_json_lists_the_whole_registry() {
        let doc = Json::parse(&render_lints_json()).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj.get("schema_version").and_then(Json::as_num), Some(1.0));
        let Some(Json::Arr(items)) = obj.get("lints") else {
            panic!("lints array missing")
        };
        assert_eq!(items.len(), lints::all_lints().len());
        for item in items {
            let o = item.as_obj().unwrap();
            assert!(o.get("name").and_then(Json::as_str).is_some());
            assert!(o.get("summary").and_then(Json::as_str).is_some());
            let sev = o.get("severity").and_then(Json::as_str).unwrap();
            assert!(sev == "error" || sev == "warning");
            assert!(matches!(o.get("autofixable"), Some(Json::Bool(_))));
        }
    }
}
