//! A lightweight brace-matched item/block tree over the token stream.
//!
//! This is deliberately not an AST: the second-generation lints need to know
//! *which function a token is in*, *whether it sits in a loop body*, and
//! *where the current statement ends* — all of which fall out of brace
//! matching plus a handful of keyword scans. Anything more (expression
//! grammar, types) would be cost without customers.

use crate::lexer::{Token, TokenKind};

/// One `{ … }` block, by token index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Token index of the `{`.
    pub open: usize,
    /// Token index of the matching `}` (or the last token when unclosed).
    pub close: usize,
}

/// One `fn` item with a named header and (usually) a body block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Body block, `None` for trait-method declarations (`fn f();`).
    pub body: Option<Block>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// One loop (`for`/`while`/`loop`) body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopItem {
    /// Token index of the loop keyword.
    pub keyword: usize,
    pub body: Block,
}

/// The per-file structural index.
#[derive(Debug, Clone, Default)]
pub struct FileTree {
    /// Brace depth of each token (depth of the block it sits in; the `{`
    /// and `}` tokens themselves carry the *outer* depth).
    pub depth: Vec<u32>,
    pub functions: Vec<FnItem>,
    pub loops: Vec<LoopItem>,
}

impl FileTree {
    /// Builds the tree for a lexed file. `src` is the file the tokens were
    /// lexed from (token text is resolved through it).
    pub fn build(src: &str, tokens: &[Token]) -> FileTree {
        let depth = depths(tokens, src);
        let functions = find_functions(src, tokens, &depth);
        let loops = find_loops(src, tokens, &depth);
        FileTree {
            depth,
            functions,
            loops,
        }
    }

    /// The innermost function whose body contains token `idx`.
    pub fn function_at(&self, idx: usize) -> Option<&FnItem> {
        let mut best: Option<&FnItem> = None;
        for f in &self.functions {
            if let Some(b) = f.body {
                if b.open < idx && idx < b.close {
                    // Innermost = latest-opening body that still contains idx.
                    if best.and_then(|f| f.body).is_none_or(|bb| b.open > bb.open) {
                        best = Some(f);
                    }
                }
            }
        }
        best
    }

    /// True when token `idx` is inside at least one loop body.
    pub fn in_loop_body(&self, idx: usize) -> bool {
        self.loops
            .iter()
            .any(|l| l.body.open < idx && idx < l.body.close)
    }
}

/// Brace depth per token. String/char/comment tokens never affect depth —
/// the lexer already folded their content away.
fn depths(tokens: &[Token], src: &str) -> Vec<u32> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut depth = 0u32;
    for t in tokens {
        if t.kind == TokenKind::Punct {
            match t.text(src) {
                "{" => {
                    out.push(depth);
                    depth += 1;
                    continue;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    out.push(depth);
                    continue;
                }
                _ => {}
            }
        }
        out.push(depth);
    }
    out
}

/// Finds the `}` matching the `{` at token `open`. Returns the last token
/// index when the file ends unclosed.
pub fn matching_close(src: &str, tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text(src) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

fn find_functions(src: &str, tokens: &[Token], depth: &[u32]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Ident && tokens[i].text(src) == "fn" {
            // The name is the next identifier (skipping nothing: `fn name`).
            let name_idx = i + 1;
            if let Some(name_tok) = tokens.get(name_idx) {
                if name_tok.kind == TokenKind::Ident {
                    // Scan for the body `{` — or a `;` first (no body).
                    // Signatures contain no braces at this depth (closures in
                    // const-generic defaults are out of scope).
                    let d = depth[i];
                    let mut body = None;
                    let mut j = name_idx + 1;
                    while let Some(t) = tokens.get(j) {
                        if t.kind == TokenKind::Punct && depth[j] <= d {
                            match t.text(src) {
                                "{" if depth[j] == d => {
                                    body = Some(Block {
                                        open: j,
                                        close: matching_close(src, tokens, j),
                                    });
                                    break;
                                }
                                ";" if depth[j] == d => break,
                                "}" if depth[j] < d => break,
                                _ => {}
                            }
                        }
                        j += 1;
                    }
                    out.push(FnItem {
                        name: name_tok.text(src).to_string(),
                        fn_tok: i,
                        body,
                        line: tokens[i].line,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

fn find_loops(src: &str, tokens: &[Token], depth: &[u32]) -> Vec<LoopItem> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let kw = t.text(src);
        if !matches!(kw, "for" | "while" | "loop") {
            continue;
        }
        // `impl Trait for Type { … }` — that `for` heads an impl body, not a
        // loop: reject when an `impl` appears since the last `{`/`}`/`;` at
        // any depth (impl headers are short and brace-free).
        if kw == "for" {
            let mut k = i;
            let mut is_impl = false;
            while k > 0 {
                k -= 1;
                let p = &tokens[k];
                if p.kind == TokenKind::Punct && matches!(p.text(src), "{" | "}" | ";") {
                    break;
                }
                if p.kind == TokenKind::Ident && p.text(src) == "impl" {
                    is_impl = true;
                    break;
                }
            }
            if is_impl {
                continue;
            }
            // HRTB `for<'a>` is not a loop either.
            if tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Punct && n.text(src) == "<")
            {
                continue;
            }
        }
        // Body = first `{` at the keyword's depth (struct literals are not
        // legal in loop-head expression position, so this is unambiguous).
        let d = depth[i];
        let mut j = i + 1;
        let mut found = None;
        while let Some(t) = tokens.get(j) {
            if t.kind == TokenKind::Punct && depth[j] <= d {
                match t.text(src) {
                    "{" if depth[j] == d => {
                        found = Some(Block {
                            open: j,
                            close: matching_close(src, tokens, j),
                        });
                        break;
                    }
                    ";" if depth[j] == d => break,
                    "}" if depth[j] < d => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if let Some(body) = found {
            out.push(LoopItem { keyword: i, body });
        }
    }
    out
}

/// Token index just past the end of the statement containing token `idx`:
/// the next `;` at the statement's depth, or — when the statement heads a
/// block (`for … { … }`, `if … { … }`) — the block's closing `}`. Returns
/// the enclosing block close when neither appears (tail expressions).
pub fn statement_end(src: &str, tokens: &[Token], depth: &[u32], idx: usize) -> usize {
    let d = depth[idx];
    let mut j = idx;
    while let Some(t) = tokens.get(j) {
        if t.kind == TokenKind::Punct {
            match t.text(src) {
                ";" if depth[j] == d => return j,
                "{" if depth[j] == d => return matching_close(src, tokens, j),
                "}" if depth[j] < d => return j,
                _ => {}
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Token index of the `}` closing the innermost block containing `idx`.
pub fn enclosing_block_close(src: &str, tokens: &[Token], depth: &[u32], idx: usize) -> usize {
    let d = depth[idx];
    if d == 0 {
        return tokens.len().saturating_sub(1);
    }
    let mut j = idx;
    while let Some(t) = tokens.get(j) {
        if t.kind == TokenKind::Punct && t.text(src) == "}" && depth[j] == d - 1 {
            return j;
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> (Vec<Token>, FileTree) {
        let toks = lex(src);
        let t = FileTree::build(src, &toks);
        (toks, t)
    }

    #[test]
    fn functions_with_and_without_bodies() {
        let src = "trait T { fn decl(&self); }\nimpl T for X { fn body(&self) { work(); } }\nfn free() {}\n";
        let (_toks, t) = tree(src);
        let names: Vec<(&str, bool)> = t
            .functions
            .iter()
            .map(|f| (f.name.as_str(), f.body.is_some()))
            .collect();
        assert_eq!(names, vec![("decl", false), ("body", true), ("free", true)]);
    }

    #[test]
    fn nested_function_attribution() {
        let src = "fn outer() { helper(); fn inner() { leaf(); } tail(); }\n";
        let (toks, t) = tree(src);
        let leaf_idx = toks.iter().position(|tok| tok.text(src) == "leaf").unwrap();
        assert_eq!(t.function_at(leaf_idx).unwrap().name, "inner");
        let tail_idx = toks.iter().position(|tok| tok.text(src) == "tail").unwrap();
        assert_eq!(t.function_at(tail_idx).unwrap().name, "outer");
    }

    #[test]
    fn loops_detected_impl_for_is_not() {
        let src = "impl Iterator for X { fn go(&mut self) { for i in 0..3 { body(); } while x { w(); } loop { l(); } } }\nfn hrtb<F: for<'a> Fn(&'a u8)>(f: F) {}\n";
        let (toks, t) = tree(src);
        assert_eq!(t.loops.len(), 3);
        let body_idx = toks.iter().position(|tok| tok.text(src) == "body").unwrap();
        assert!(t.in_loop_body(body_idx));
        let go_idx = toks.iter().position(|tok| tok.text(src) == "go").unwrap();
        assert!(!t.in_loop_body(go_idx));
    }

    #[test]
    fn statement_end_expression_and_block_headed() {
        let src = "fn f() { a.lock(); for x in y.lock().iter() { use_it(x); } b(); }\n";
        let (toks, t) = tree(src);
        let first_lock = toks.iter().position(|tok| tok.text(src) == "lock").unwrap();
        let end = statement_end(src, &toks, &t.depth, first_lock);
        assert_eq!(toks[end].text(src), ";");
        // The for-head lock's statement extends through the loop body.
        let second_lock = toks
            .iter()
            .enumerate()
            .filter(|(_, tok)| tok.text(src) == "lock")
            .nth(1)
            .map(|(i, _)| i)
            .unwrap();
        let end = statement_end(src, &toks, &t.depth, second_lock);
        assert_eq!(toks[end].text(src), "}");
        let use_idx = toks
            .iter()
            .position(|tok| tok.text(src) == "use_it")
            .unwrap();
        assert!(end > use_idx, "loop body is inside the for statement");
    }

    #[test]
    fn enclosing_block_close_finds_the_right_brace() {
        let src = "fn f() { { inner(); } outer(); }\n";
        let (toks, t) = tree(src);
        let inner_idx = toks
            .iter()
            .position(|tok| tok.text(src) == "inner")
            .unwrap();
        let close = enclosing_block_close(src, &toks, &t.depth, inner_idx);
        let outer_idx = toks
            .iter()
            .position(|tok| tok.text(src) == "outer")
            .unwrap();
        assert!(close < outer_idx);
    }
}
