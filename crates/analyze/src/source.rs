//! Source-file model: token-backed comment/string scrubbing, test-region
//! detection, and inline `// analyze:allow(<lint>) <justification>`
//! suppression directives.
//!
//! The engine lexes every file with the real Rust tokenizer in [`crate::lexer`]
//! and reconstructs *scrubbed* per-line text from the token stream — string
//! and char literals collapse to a single space, comments vanish — so lint
//! patterns can never match inside a literal or a doc comment. The previous
//! line-state-machine scrubber survives as [`crate::legacy`] and a golden
//! test pins the two engines to identical violation sets.

use crate::lexer::{lex, Token, TokenKind};
use crate::tree::FileTree;

/// One inline suppression directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub lint: String,
    pub justification: String,
    /// Line carrying the directive comment (1-based).
    pub line: usize,
}

/// One physical source line after scrubbing.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    pub raw: String,
    /// String/char literals blanked, comments removed.
    pub scrubbed: String,
    /// Inside a `#[cfg(test)]` / `#[test]` region, or in a test-only file.
    pub in_test_code: bool,
    /// Directives that apply to findings on this line.
    pub allows: Vec<Allow>,
}

/// A parsed source file ready for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The raw source the tokens index into.
    pub src: String,
    pub lines: Vec<Line>,
    /// The full token stream (empty when built by the legacy engine).
    pub tokens: Vec<Token>,
    /// Brace-matched structure over `tokens`.
    pub tree: FileTree,
}

/// Marker that introduces a suppression inside a line comment.
pub const ALLOW_MARKER: &str = "analyze:allow(";

/// Parses `analyze:allow(name[, name...])[:] justification` from a comment.
pub(crate) fn parse_allows(comment: &str, line: usize) -> Vec<Allow> {
    let Some(start) = comment.find(ALLOW_MARKER) else {
        return Vec::new();
    };
    let rest = &comment[start + ALLOW_MARKER.len()..];
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    let names = &rest[..close];
    let justification = rest[close + 1..]
        .trim_start_matches([':', ' ', '-'])
        .trim()
        .to_string();
    names
        .split(',')
        .map(str::trim)
        .filter(|n| !n.is_empty())
        .map(|n| Allow {
            lint: n.to_string(),
            justification: justification.clone(),
            line,
        })
        .collect()
}

impl SourceFile {
    /// Parses a file from in-memory source. `path` should be
    /// workspace-relative; test-only paths (`tests/`, `benches/`,
    /// `examples/`) mark every line as test code.
    pub fn from_source(path: &str, source: &str) -> SourceFile {
        let tokens = lex(source);
        let n_lines = source.lines().count();
        let mut scrubbed: Vec<String> = vec![String::new(); n_lines];
        let mut comments: Vec<Option<String>> = vec![None; n_lines];
        // Walk tokens in order, copying inter-token whitespace and code
        // tokens verbatim; literals collapse to one space on their start
        // line and comments are dropped (line comments keep their text
        // aside for allow parsing — doc comments are prose, not directives).
        let mut cur = 0usize;
        let mut prev_end = 0usize;
        for t in &tokens {
            for &b in source.as_bytes()[prev_end..t.start].iter() {
                if b == b'\n' {
                    cur += 1;
                } else if b != b'\r' {
                    if let Some(buf) = scrubbed.get_mut(cur) {
                        buf.push(b as char);
                    }
                }
            }
            let text = t.text(source);
            match t.kind {
                TokenKind::LineComment => {
                    if let Some(slot) = comments.get_mut(cur) {
                        *slot = Some(text[2..].to_string());
                    }
                }
                TokenKind::DocComment | TokenKind::BlockComment => {}
                TokenKind::Str | TokenKind::RawStr | TokenKind::Char => {
                    if let Some(buf) = scrubbed.get_mut(cur) {
                        buf.push(' ');
                    }
                }
                _ => {
                    if let Some(buf) = scrubbed.get_mut(cur) {
                        buf.push_str(text);
                    }
                }
            }
            cur += text.bytes().filter(|&b| b == b'\n').count();
            prev_end = t.end;
        }
        let tree = FileTree::build(source, &tokens);
        assemble(path, source, scrubbed, comments, tokens, tree)
    }

    /// Flattened scrubbed text with `\n` separators, plus the flat offset at
    /// which each line starts — for lints whose patterns span lines.
    pub fn flat_scrubbed(&self) -> (String, Vec<usize>) {
        let mut text = String::new();
        let mut offsets = Vec::with_capacity(self.lines.len());
        for line in &self.lines {
            offsets.push(text.len());
            text.push_str(&line.scrubbed);
            text.push('\n');
        }
        (text, offsets)
    }

    /// Maps a flat offset back to a 0-based line index.
    pub fn line_of_offset(offsets: &[usize], offset: usize) -> usize {
        match offsets.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        }
    }

    /// True when the token at `idx` sits on a test-code line.
    pub fn token_in_test_code(&self, idx: usize) -> bool {
        self.tokens
            .get(idx)
            .and_then(|t| self.lines.get(t.line.saturating_sub(1)))
            .is_some_and(|l| l.in_test_code)
    }
}

/// Builds the final [`SourceFile`] from per-line scrubbed text and captured
/// line-comment text. Shared between the token engine and the legacy
/// scrubber so allow attachment and test-region marking cannot drift.
pub(crate) fn assemble(
    path: &str,
    source: &str,
    scrubbed: Vec<String>,
    comments: Vec<Option<String>>,
    tokens: Vec<Token>,
    tree: FileTree,
) -> SourceFile {
    let test_file = is_test_path(path);
    let mut lines: Vec<Line> = Vec::new();
    let mut pending_allows: Vec<Allow> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let scrubbed = scrubbed.get(idx).cloned().unwrap_or_default();
        let comment = comments.get(idx).cloned().flatten();
        let mut allows = comment
            .as_deref()
            .map(|c| parse_allows(c, idx + 1))
            .unwrap_or_default();
        let code_is_blank = scrubbed.trim().is_empty();
        if code_is_blank && !allows.is_empty() {
            // Standalone directive comment: applies to the next code line.
            pending_allows.append(&mut allows);
            lines.push(Line {
                number: idx + 1,
                raw: raw.to_string(),
                scrubbed,
                in_test_code: test_file,
                allows: Vec::new(),
            });
            continue;
        }
        if !code_is_blank && !pending_allows.is_empty() {
            allows.extend(pending_allows.drain(..));
        }
        lines.push(Line {
            number: idx + 1,
            raw: raw.to_string(),
            scrubbed,
            in_test_code: test_file,
            allows,
        });
    }
    let mut file = SourceFile {
        path: path.to_string(),
        src: source.to_string(),
        lines,
        tokens,
        tree,
    };
    if !test_file {
        mark_test_regions(&mut file);
    }
    file
}

pub(crate) fn is_test_path(path: &str) -> bool {
    path.split('/').any(|seg| {
        seg == "tests" || seg == "benches" || seg == "examples" || seg == "proptest-regressions"
    })
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` items as test code by brace
/// matching from the attribute to the item's closing brace.
pub(crate) fn mark_test_regions(file: &mut SourceFile) {
    let n = file.lines.len();
    let mut i = 0;
    while i < n {
        let compact: String = file.lines[i]
            .scrubbed
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        let is_marker = compact.contains("#[cfg(test)]")
            || compact.contains("#[cfg(all(test")
            || compact.contains("#[cfg(any(test")
            || compact.contains("#[test]");
        if !is_marker {
            i += 1;
            continue;
        }
        // Scan forward for the item's opening brace; a `;` first means a
        // braceless item (e.g. `mod tests;`) — mark just these lines.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut end = i;
        'scan: for (j, line) in file.lines.iter().enumerate().skip(i) {
            for c in line.scrubbed.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            end = j;
                            break 'scan;
                        }
                    }
                    ';' if !opened && depth == 0 => {
                        end = j;
                        break 'scan;
                    }
                    _ => {}
                }
            }
            end = j;
        }
        for line in &mut file.lines[i..=end] {
            line.in_test_code = true;
        }
        i = end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_scrubbed() {
        let f = SourceFile::from_source(
            "crates/x/src/lib.rs",
            "let s = \"a.unwrap()\"; // .unwrap() in comment\nlet t = x.unwrap();\n",
        );
        assert!(!f.lines[0].scrubbed.contains("unwrap"));
        assert!(f.lines[1].scrubbed.contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_span_lines() {
        let src = "let s = r#\"line one .unwrap()\nline two HashMap\"#;\nlet m = HashMap::new();\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert!(!f.lines[0].scrubbed.contains("unwrap"));
        assert!(!f.lines[1].scrubbed.contains("HashMap"));
        assert!(f.lines[2].scrubbed.contains("HashMap"));
    }

    #[test]
    fn block_comments_nest_across_lines() {
        let src = "/* outer /* inner */ still comment .unwrap() */ let a = 1;\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert!(!f.lines[0].scrubbed.contains("unwrap"));
        assert!(f.lines[0].scrubbed.contains("let a = 1;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; }\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        // The double-quote char literal must not open a string.
        assert!(f.lines[0].scrubbed.contains('}'));
        assert!(f.lines[0].scrubbed.contains("'a"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn prod2() {}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert!(!f.lines[0].in_test_code);
        assert!(f.lines[1].in_test_code);
        assert!(f.lines[3].in_test_code);
        assert!(f.lines[4].in_test_code);
        assert!(!f.lines[5].in_test_code);
    }

    #[test]
    fn test_attribute_function_is_marked() {
        let src = "fn prod() {}\n#[test]\nfn check() {\n    boom();\n}\nfn after() {}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert!(f.lines[2].in_test_code);
        assert!(f.lines[3].in_test_code);
        assert!(!f.lines[5].in_test_code);
    }

    #[test]
    fn tests_directory_is_all_test_code() {
        let f = SourceFile::from_source("tests/e2e.rs", "fn main() { x.unwrap(); }\n");
        assert!(f.lines[0].in_test_code);
    }

    #[test]
    fn allow_on_same_line_and_standalone() {
        let src = "let a = x.unwrap(); // analyze:allow(panic-on-data-path) startup only\n\
                   // analyze:allow(nan-unsafe-ordering): filtered finite above\n\
                   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert_eq!(f.lines[0].allows.len(), 1);
        assert_eq!(f.lines[0].allows[0].lint, "panic-on-data-path");
        assert_eq!(f.lines[0].allows[0].justification, "startup only");
        assert!(f.lines[1].allows.is_empty());
        assert_eq!(f.lines[2].allows.len(), 1);
        assert_eq!(f.lines[2].allows[0].lint, "nan-unsafe-ordering");
    }

    #[test]
    fn doc_comments_do_not_declare_allows() {
        let src = "/// Mentions analyze:allow(panic-on-data-path) in prose.\n\
                   //! And so does analyze:allow(unseeded-rng) here.\nfn f() {}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert!(f.lines.iter().all(|l| l.allows.is_empty()));
    }

    #[test]
    fn allow_marker_inside_raw_string_is_not_a_directive() {
        let src = "let doc = r#\"// analyze:allow(panic-on-data-path) not real\"#;\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert!(f.lines[0].allows.is_empty());
    }

    #[test]
    fn multi_lint_allow_shares_justification() {
        let src = "let m = x; // analyze:allow(a-lint, b-lint) both fine here\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert_eq!(f.lines[0].allows.len(), 2);
        assert_eq!(f.lines[0].allows[1].lint, "b-lint");
        assert_eq!(f.lines[0].allows[1].justification, "both fine here");
    }

    #[test]
    fn flat_offsets_map_back_to_lines() {
        let f = SourceFile::from_source("crates/x/src/lib.rs", "abc\ndef\nghi\n");
        let (text, offsets) = f.flat_scrubbed();
        let pos = text.find("ghi").unwrap();
        assert_eq!(SourceFile::line_of_offset(&offsets, pos), 2);
    }
}
