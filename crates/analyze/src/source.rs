//! Source-file model: comment/string scrubbing, test-region detection, and
//! inline `// analyze:allow(<lint>) <justification>` suppression directives.
//!
//! The engine works on *scrubbed* text — string and char literals blanked,
//! comments removed — so lint patterns can never match inside a literal or a
//! doc comment. Scrubbing is a small cross-line state machine (Rust string
//! literals, raw strings, and block comments all span lines).

/// One inline suppression directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub lint: String,
    pub justification: String,
    /// Line carrying the directive comment (1-based).
    pub line: usize,
}

/// One physical source line after scrubbing.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    pub raw: String,
    /// String/char literals blanked, comments removed.
    pub scrubbed: String,
    /// Inside a `#[cfg(test)]` / `#[test]` region, or in a test-only file.
    pub in_test_code: bool,
    /// Directives that apply to findings on this line.
    pub allows: Vec<Allow>,
}

/// A parsed source file ready for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub lines: Vec<Line>,
}

/// Marker that introduces a suppression inside a line comment.
pub const ALLOW_MARKER: &str = "analyze:allow(";

#[derive(Clone, Copy, PartialEq)]
enum ScrubState {
    Code,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Scrubs one physical line given the entry state; returns the scrubbed text,
/// the exit state, and the text of any `//` line comment on the line.
fn scrub_line(line: &str, mut state: ScrubState) -> (String, ScrubState, Option<String>) {
    let chars: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut comment: Option<String> = None;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            ScrubState::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = ScrubState::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth > 1 {
                        ScrubState::BlockComment(depth - 1)
                    } else {
                        ScrubState::Code
                    };
                    i += 2;
                } else {
                    i += 1;
                }
            }
            ScrubState::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    state = ScrubState::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    i += 1;
                }
            }
            ScrubState::RawStr(hashes) => {
                if c == '"' {
                    let closes = (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closes {
                        state = ScrubState::Code;
                        out.push(' ');
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                i += 1;
            }
            ScrubState::Code => {
                if c == '/' && next == Some('/') {
                    // Line comment: capture its text for allow parsing.
                    // Doc comments (`///`, `//!`) are prose, not directives —
                    // they may *mention* the allow marker without meaning it.
                    let is_doc = matches!(chars.get(i + 2), Some('/' | '!'));
                    if !is_doc {
                        comment = Some(chars[i + 2..].iter().collect());
                    }
                    break;
                }
                if c == '/' && next == Some('*') {
                    state = ScrubState::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = ScrubState::Str;
                    out.push(' ');
                    i += 1;
                    continue;
                }
                // Raw / byte string starts: r", r#", br", b".
                let prev_is_ident =
                    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                if !prev_is_ident && (c == 'r' || c == 'b') {
                    if let Some((raw_form, hashes, consumed)) = raw_string_open(&chars[i..]) {
                        // `b"..."` is an ordinary (escaped) string; `r`-forms
                        // are raw and close only on `"` + matching hashes.
                        state = if raw_form {
                            ScrubState::RawStr(hashes)
                        } else {
                            ScrubState::Str
                        };
                        out.push(' ');
                        i += consumed;
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal vs lifetime.
                    if next == Some('\\') {
                        // Escaped char literal: skip to closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        out.push(' ');
                        i = j + 1;
                        continue;
                    }
                    if chars.get(i + 2) == Some(&'\'') && next.is_some() {
                        out.push(' ');
                        i += 3;
                        continue;
                    }
                    // Lifetime: keep the tick so code shape survives.
                    out.push(c);
                    i += 1;
                    continue;
                }
                out.push(c);
                i += 1;
            }
        }
    }
    (out, state, comment)
}

/// Detects `r"`, `r#"`, `br"`, `b"` etc. at the start of `chars`. Returns
/// `(is_raw_form, hash_count, chars_consumed_through_opening_quote)`.
fn raw_string_open(chars: &[char]) -> Option<(bool, u32, usize)> {
    let mut i = 0;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    let rawish = chars.get(i) == Some(&'r');
    if rawish {
        i += 1;
    }
    if i == 0 {
        return None;
    }
    let mut hashes = 0u32;
    while chars.get(i + hashes as usize) == Some(&'#') {
        hashes += 1;
    }
    let q = i + hashes as usize;
    if chars.get(q) == Some(&'"') && (rawish || hashes == 0) {
        Some((rawish, hashes, q + 1))
    } else {
        None
    }
}

/// Parses `analyze:allow(name[, name...])[:] justification` from a comment.
fn parse_allows(comment: &str, line: usize) -> Vec<Allow> {
    let Some(start) = comment.find(ALLOW_MARKER) else {
        return Vec::new();
    };
    let rest = &comment[start + ALLOW_MARKER.len()..];
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    let names = &rest[..close];
    let justification = rest[close + 1..]
        .trim_start_matches([':', ' ', '-'])
        .trim()
        .to_string();
    names
        .split(',')
        .map(str::trim)
        .filter(|n| !n.is_empty())
        .map(|n| Allow {
            lint: n.to_string(),
            justification: justification.clone(),
            line,
        })
        .collect()
}

impl SourceFile {
    /// Parses a file from in-memory source. `path` should be
    /// workspace-relative; test-only paths (`tests/`, `benches/`,
    /// `examples/`) mark every line as test code.
    pub fn from_source(path: &str, source: &str) -> SourceFile {
        let test_file = is_test_path(path);
        let mut state = ScrubState::Code;
        let mut lines: Vec<Line> = Vec::new();
        let mut pending_allows: Vec<Allow> = Vec::new();
        for (idx, raw) in source.lines().enumerate() {
            let (scrubbed, next_state, comment) = scrub_line(raw, state);
            state = next_state;
            let mut allows = comment
                .as_deref()
                .map(|c| parse_allows(c, idx + 1))
                .unwrap_or_default();
            let code_is_blank = scrubbed.trim().is_empty();
            if code_is_blank && !allows.is_empty() {
                // Standalone directive comment: applies to the next code line.
                pending_allows.append(&mut allows);
                lines.push(Line {
                    number: idx + 1,
                    raw: raw.to_string(),
                    scrubbed,
                    in_test_code: test_file,
                    allows: Vec::new(),
                });
                continue;
            }
            if !code_is_blank && !pending_allows.is_empty() {
                allows.extend(pending_allows.drain(..));
            }
            lines.push(Line {
                number: idx + 1,
                raw: raw.to_string(),
                scrubbed,
                in_test_code: test_file,
                allows,
            });
        }
        let mut file = SourceFile {
            path: path.to_string(),
            lines,
        };
        if !test_file {
            mark_test_regions(&mut file);
        }
        file
    }

    /// Flattened scrubbed text with `\n` separators, plus the flat offset at
    /// which each line starts — for lints whose patterns span lines.
    pub fn flat_scrubbed(&self) -> (String, Vec<usize>) {
        let mut text = String::new();
        let mut offsets = Vec::with_capacity(self.lines.len());
        for line in &self.lines {
            offsets.push(text.len());
            text.push_str(&line.scrubbed);
            text.push('\n');
        }
        (text, offsets)
    }

    /// Maps a flat offset back to a 0-based line index.
    pub fn line_of_offset(offsets: &[usize], offset: usize) -> usize {
        match offsets.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        }
    }
}

fn is_test_path(path: &str) -> bool {
    path.split('/').any(|seg| {
        seg == "tests" || seg == "benches" || seg == "examples" || seg == "proptest-regressions"
    })
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` items as test code by brace
/// matching from the attribute to the item's closing brace.
fn mark_test_regions(file: &mut SourceFile) {
    let n = file.lines.len();
    let mut i = 0;
    while i < n {
        let compact: String = file.lines[i]
            .scrubbed
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        let is_marker = compact.contains("#[cfg(test)]")
            || compact.contains("#[cfg(all(test")
            || compact.contains("#[cfg(any(test")
            || compact.contains("#[test]");
        if !is_marker {
            i += 1;
            continue;
        }
        // Scan forward for the item's opening brace; a `;` first means a
        // braceless item (e.g. `mod tests;`) — mark just these lines.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut end = i;
        'scan: for (j, line) in file.lines.iter().enumerate().skip(i) {
            for c in line.scrubbed.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            end = j;
                            break 'scan;
                        }
                    }
                    ';' if !opened && depth == 0 => {
                        end = j;
                        break 'scan;
                    }
                    _ => {}
                }
            }
            end = j;
        }
        for line in &mut file.lines[i..=end] {
            line.in_test_code = true;
        }
        i = end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_scrubbed() {
        let f = SourceFile::from_source(
            "crates/x/src/lib.rs",
            "let s = \"a.unwrap()\"; // .unwrap() in comment\nlet t = x.unwrap();\n",
        );
        assert!(!f.lines[0].scrubbed.contains("unwrap"));
        assert!(f.lines[1].scrubbed.contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_span_lines() {
        let src = "let s = r#\"line one .unwrap()\nline two HashMap\"#;\nlet m = HashMap::new();\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert!(!f.lines[0].scrubbed.contains("unwrap"));
        assert!(!f.lines[1].scrubbed.contains("HashMap"));
        assert!(f.lines[2].scrubbed.contains("HashMap"));
    }

    #[test]
    fn block_comments_nest_across_lines() {
        let src = "/* outer /* inner */ still comment .unwrap() */ let a = 1;\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert!(!f.lines[0].scrubbed.contains("unwrap"));
        assert!(f.lines[0].scrubbed.contains("let a = 1;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; }\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        // The double-quote char literal must not open a string.
        assert!(f.lines[0].scrubbed.contains('}'));
        assert!(f.lines[0].scrubbed.contains("'a"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn prod2() {}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert!(!f.lines[0].in_test_code);
        assert!(f.lines[1].in_test_code);
        assert!(f.lines[3].in_test_code);
        assert!(f.lines[4].in_test_code);
        assert!(!f.lines[5].in_test_code);
    }

    #[test]
    fn test_attribute_function_is_marked() {
        let src = "fn prod() {}\n#[test]\nfn check() {\n    boom();\n}\nfn after() {}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert!(f.lines[2].in_test_code);
        assert!(f.lines[3].in_test_code);
        assert!(!f.lines[5].in_test_code);
    }

    #[test]
    fn tests_directory_is_all_test_code() {
        let f = SourceFile::from_source("tests/e2e.rs", "fn main() { x.unwrap(); }\n");
        assert!(f.lines[0].in_test_code);
    }

    #[test]
    fn allow_on_same_line_and_standalone() {
        let src = "let a = x.unwrap(); // analyze:allow(panic-on-data-path) startup only\n\
                   // analyze:allow(nan-unsafe-ordering): filtered finite above\n\
                   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert_eq!(f.lines[0].allows.len(), 1);
        assert_eq!(f.lines[0].allows[0].lint, "panic-on-data-path");
        assert_eq!(f.lines[0].allows[0].justification, "startup only");
        assert!(f.lines[1].allows.is_empty());
        assert_eq!(f.lines[2].allows.len(), 1);
        assert_eq!(f.lines[2].allows[0].lint, "nan-unsafe-ordering");
    }

    #[test]
    fn doc_comments_do_not_declare_allows() {
        let src = "/// Mentions analyze:allow(panic-on-data-path) in prose.\n\
                   //! And so does analyze:allow(unseeded-rng) here.\nfn f() {}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert!(f.lines.iter().all(|l| l.allows.is_empty()));
    }

    #[test]
    fn multi_lint_allow_shares_justification() {
        let src = "let m = x; // analyze:allow(a-lint, b-lint) both fine here\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert_eq!(f.lines[0].allows.len(), 2);
        assert_eq!(f.lines[0].allows[1].lint, "b-lint");
        assert_eq!(f.lines[0].allows[1].justification, "both fine here");
    }

    #[test]
    fn flat_offsets_map_back_to_lines() {
        let f = SourceFile::from_source("crates/x/src/lib.rs", "abc\ndef\nghi\n");
        let (text, offsets) = f.flat_scrubbed();
        let pos = text.find("ghi").unwrap();
        assert_eq!(SourceFile::line_of_offset(&offsets, pos), 2);
    }
}
