//! A minimal JSON value with parser and writer.
//!
//! The analyzer must run — and be testable — in environments where the
//! workspace's `serde_json` dependency is stubbed out (the offline build
//! described in the verify notes), and its only JSON needs are the ratchet
//! baseline and the machine-readable report. A ~200-line recursive-descent
//! parser keeps the crate dependency-free and byte-deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document. Objects use [`BTreeMap`] so rendering is deterministic —
/// the analyzer practices the `nondeterministic-iteration` invariant it
/// enforces.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let chars: Vec<char> = text.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing input at offset {}", p.pos));
        }
        Ok(value)
    }

    /// Renders with two-space indentation and a trailing newline, matching
    /// the repo's committed-artifact style.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_inner = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => render_number(out, *n),
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_inner);
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad_inner);
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn render_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while matches!(self.chars.get(self.pos), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{c}' at offset {} (found {:?})",
                self.pos,
                self.peek()
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let h = self.peek().ok_or("truncated \\u escape")?;
                                code = code * 16
                                    + h.to_digit(16)
                                        .ok_or_else(|| format!("bad hex digit {h:?}"))?;
                                self.pos += 1;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{other}")),
                    }
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let v = Json::parse(text).unwrap();
        let rendered = Json::parse(&v.render_pretty()).unwrap();
        assert_eq!(v, rendered);
    }

    #[test]
    fn object_keys_render_sorted() {
        let v = Json::parse(r#"{"zeta": 1, "alpha": 2}"#).unwrap();
        let out = v.render_pretty();
        assert!(out.find("alpha").unwrap() < out.find("zeta").unwrap());
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_escape() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse(r#""\q""#).is_err());
        assert!(Json::parse("[1, ]").is_err());
    }

    #[test]
    fn integers_render_without_decimal_point() {
        let v = Json::Obj(BTreeMap::from([("n".to_string(), Json::Num(42.0))]));
        assert!(v.render_pretty().contains("\"n\": 42"));
    }

    #[test]
    fn unicode_escape_parses() {
        let v = Json::parse("\"\\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("A"));
    }
}
