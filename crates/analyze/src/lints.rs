//! The project lint catalog.
//!
//! Each lint encodes an invariant the pipeline already depends on:
//!
//! * `panic-on-data-path` — the trace-load / aggregate / model-fit crates
//!   must surface typed errors, never panic, on data-dependent input
//!   (the fault-injection harness of PR 4 feeds them arbitrary garbage).
//! * `nan-unsafe-ordering` — `partial_cmp().unwrap()` panics on NaN and
//!   `unwrap_or(Equal)` silently mis-sorts it; orderings on floats must use
//!   `f64::total_cmp` or the NaN-ignoring statistics helpers.
//! * `nondeterministic-iteration` — `HashMap`/`HashSet` iteration order is
//!   randomized per process; anything that can reach a serialized artifact
//!   or a report table must use `BTreeMap`/`BTreeSet` or sort explicitly.
//! * `unseeded-rng` — all randomness must flow from the seeded splitmix64
//!   streams in `sim::noise` so fault plans and simulations replay
//!   identically; ambient-entropy constructors are banned.
//! * `raw-duration-arith` — ad-hoc `* 1e9` / `* 1e-9` conversions between
//!   `u64` nanoseconds and `f64` seconds drift apart one call site at a
//!   time; conversions go through `trace::units`.

use crate::source::SourceFile;

/// Static metadata of one lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lint {
    pub name: &'static str,
    pub summary: &'static str,
}

/// One finding, before suppression/baseline filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub lint: &'static str,
    pub path: String,
    /// 1-based.
    pub line: usize,
    pub message: String,
    pub snippet: String,
}

pub const PANIC_ON_DATA_PATH: &str = "panic-on-data-path";
pub const NAN_UNSAFE_ORDERING: &str = "nan-unsafe-ordering";
pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
pub const UNSEEDED_RNG: &str = "unseeded-rng";
pub const RAW_DURATION_ARITH: &str = "raw-duration-arith";

/// The registry, in reporting order.
pub fn all_lints() -> &'static [Lint] {
    &[
        Lint {
            name: PANIC_ON_DATA_PATH,
            summary: "unwrap/expect/panic! in non-test code of the trace/agg/model data path",
        },
        Lint {
            name: NAN_UNSAFE_ORDERING,
            summary: "partial_cmp with unwrap/unwrap_or on floats; use f64::total_cmp",
        },
        Lint {
            name: NONDETERMINISTIC_ITERATION,
            summary: "HashMap/HashSet in non-test code; use BTreeMap/BTreeSet or sort",
        },
        Lint {
            name: UNSEEDED_RNG,
            summary: "RNG from ambient entropy; use the seeded streams in sim::noise",
        },
        Lint {
            name: RAW_DURATION_ARITH,
            summary: "inline ns<->s conversion arithmetic; use trace::units helpers",
        },
    ]
}

/// Crates whose non-test code is a data path: they consume measurement data
/// (possibly corrupted) and must fail with typed errors instead of panicking.
const DATA_PATH_PREFIXES: &[&str] = &["crates/trace/src/", "crates/agg/src/", "crates/model/src/"];

/// The one file allowed to spell out ns<->s conversion constants.
const UNITS_FILE_SUFFIX: &str = "trace/src/units.rs";

/// Runs every lint over one parsed file.
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    panic_on_data_path(file, &mut out);
    nan_unsafe_ordering(file, &mut out);
    nondeterministic_iteration(file, &mut out);
    unseeded_rng(file, &mut out);
    raw_duration_arith(file, &mut out);
    out.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    out
}

fn snippet(file: &SourceFile, line_idx: usize) -> String {
    file.lines
        .get(line_idx)
        .map(|l| l.raw.trim().to_string())
        .unwrap_or_default()
}

fn push(
    out: &mut Vec<Violation>,
    lint: &'static str,
    file: &SourceFile,
    line_idx: usize,
    msg: String,
) {
    out.push(Violation {
        lint,
        path: file.path.clone(),
        line: file.lines[line_idx].number,
        message: msg,
        snippet: snippet(file, line_idx),
    });
}

/// `panic-on-data-path`: panicking constructs in non-test code of the
/// trace/agg/model crates.
fn panic_on_data_path(file: &SourceFile, out: &mut Vec<Violation>) {
    if !DATA_PATH_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
        return;
    }
    const PATTERNS: &[(&str, &str)] = &[
        (".unwrap()", "unwrap() panics on the error/None case"),
        (".expect(", "expect() panics on the error/None case"),
        ("panic!(", "explicit panic"),
        (
            "unreachable!(",
            "unreachable!() is a panic on surprising data",
        ),
        ("todo!(", "todo!() panics"),
        ("unimplemented!(", "unimplemented!() panics"),
        (
            ".unwrap_unchecked(",
            "unwrap_unchecked is UB on the None case",
        ),
    ];
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test_code {
            continue;
        }
        for (pat, why) in PATTERNS {
            if line.scrubbed.contains(pat) {
                push(
                    out,
                    PANIC_ON_DATA_PATH,
                    file,
                    i,
                    format!(
                        "`{}` on a data path: {why}; return a typed error instead",
                        pat.trim_matches(['.', '('])
                    ),
                );
            }
        }
    }
}

/// `nan-unsafe-ordering`: `partial_cmp` immediately unwrapped (panics on
/// NaN) or defaulted (silently mis-sorts NaN). Patterns may span lines, so
/// the scan runs over the flattened scrubbed text.
fn nan_unsafe_ordering(file: &SourceFile, out: &mut Vec<Violation>) {
    let (text, offsets) = file.flat_scrubbed();
    const UNWRAPS: &[&str] = &[
        ".unwrap()",
        ".unwrap_or(",
        ".unwrap_or_else(",
        ".unwrap_or_default()",
        ".expect(",
    ];
    let mut start = 0;
    while let Some(found) = text[start..].find("partial_cmp") {
        let pos = start + found;
        start = pos + "partial_cmp".len();
        // Skip trait-impl definitions: `fn partial_cmp(...)`.
        let mut lo = pos.saturating_sub(16);
        while !text.is_char_boundary(lo) {
            lo -= 1;
        }
        if text[lo..pos].trim_end().ends_with("fn") {
            continue;
        }
        let line_idx = SourceFile::line_of_offset(&offsets, pos);
        if file.lines[line_idx].in_test_code {
            continue;
        }
        // The chained unwrap follows within the same expression; 200 chars
        // comfortably covers rustfmt-wrapped chains.
        let mut window_end = (pos + 200).min(text.len());
        while !text.is_char_boundary(window_end) {
            window_end += 1;
        }
        let window = &text[pos..window_end];
        if let Some(hit) = UNWRAPS.iter().find(|u| window.contains(**u)) {
            let verb = if hit.contains("unwrap_or") || hit.contains("expect(") {
                "defaults NaN comparisons, silently mis-sorting them"
            } else {
                "panics the moment a NaN reaches the comparison"
            };
            push(
                out,
                NAN_UNSAFE_ORDERING,
                file,
                line_idx,
                format!("`partial_cmp(){hit}` {verb}; use f64::total_cmp or a NaN-ignoring helper"),
            );
        }
    }
}

/// `nondeterministic-iteration`: any HashMap/HashSet in non-test code. Even
/// lookup-only maps are flagged — a later change can start iterating one
/// into a serialized artifact without touching the declaration site, so
/// justified uses must carry an explicit allow.
fn nondeterministic_iteration(file: &SourceFile, out: &mut Vec<Violation>) {
    const PATTERNS: &[&str] = &["HashMap", "HashSet"];
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test_code {
            continue;
        }
        for pat in PATTERNS {
            // `FxHashMap` etc. still match on the suffix; a preceding ident
            // char only happens for such aliases, so every match counts.
            if line.scrubbed.contains(pat) {
                push(
                    out,
                    NONDETERMINISTIC_ITERATION,
                    file,
                    i,
                    format!(
                        "`{pat}` iteration order is randomized per process; \
                         use BTree{} or sort before anything ordered/serialized",
                        &pat[4..]
                    ),
                );
                break;
            }
        }
    }
}

/// `unseeded-rng`: randomness constructed from ambient entropy instead of
/// the seeded splitmix64 streams (`sim::noise::Rng::new` / `Rng::stream`).
fn unseeded_rng(file: &SourceFile, out: &mut Vec<Violation>) {
    const PATTERNS: &[&str] = &[
        "thread_rng(",
        "from_entropy(",
        "rand::random",
        "OsRng",
        "getrandom(",
        "RandomState::new(",
        "from_os_rng(",
    ];
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test_code {
            continue;
        }
        for pat in PATTERNS {
            if line.scrubbed.contains(pat) {
                push(
                    out,
                    UNSEEDED_RNG,
                    file,
                    i,
                    format!(
                        "`{}` draws ambient entropy and breaks fault-plan replay; \
                         derive a seeded stream (sim::noise::Rng::stream) instead",
                        pat.trim_matches('(')
                    ),
                );
                break;
            }
        }
    }
}

/// `raw-duration-arith`: `* 1e9` / `* 1e-9` style ns<->s conversions outside
/// `trace::units`. Only fires when the statement visibly handles durations
/// (an identifier ending in `_ns`, or containing `secs`/`seconds`/
/// `elapsed`/`nanos`), so bandwidth math like `bytes / (gbs * 1e9)` passes.
fn raw_duration_arith(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.path.ends_with(UNITS_FILE_SUFFIX) {
        return;
    }
    const LITERALS: &[&str] = &["1e9", "1e-9", "1e+9", "1_000_000_000"];
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test_code {
            continue;
        }
        let text = &line.scrubbed;
        if !mentions_duration(text) {
            continue;
        }
        let hit = LITERALS.iter().any(|lit| {
            text.match_indices(lit).any(|(pos, _)| {
                // Exclude longer numbers (e.g. `1e-99`) and non-arithmetic
                // uses (comparisons like `< 1e-9` are tolerances, not
                // conversions).
                let after = text[pos + lit.len()..].chars().next();
                if matches!(after, Some(c) if c.is_ascii_digit() || c == '.' || c == '_') {
                    return false;
                }
                let before = text[..pos].trim_end().chars().last();
                let following = text[pos + lit.len()..].trim_start().chars().next();
                matches!(before, Some('*' | '/')) || matches!(following, Some('*' | '/'))
            })
        });
        if hit {
            push(
                out,
                RAW_DURATION_ARITH,
                file,
                i,
                "inline ns<->s conversion; use trace::units (ns_to_secs / secs_to_ns / NANOS_PER_SEC)"
                    .to_string(),
            );
        }
    }
}

fn mentions_duration(text: &str) -> bool {
    // Identifier-boundary-aware check for a `_ns`-suffixed name.
    let bytes = text.as_bytes();
    let has_ns_ident = text.match_indices("ns").any(|(pos, _)| {
        let before_ok = pos >= 1 && bytes[pos - 1] == b'_';
        let after = bytes.get(pos + 2);
        let after_ok = !matches!(after, Some(c) if c.is_ascii_alphanumeric() || *c == b'_');
        before_ok && after_ok
    });
    has_ns_ident
        || text.contains("secs")
        || text.contains("seconds")
        || text.contains("elapsed")
        || text.contains("nanos")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn hits(path: &str, src: &str, lint: &str) -> Vec<Violation> {
        let file = SourceFile::from_source(path, src);
        check_file(&file)
            .into_iter()
            .filter(|v| v.lint == lint)
            .collect()
    }

    #[test]
    fn panic_lint_scopes_to_data_path_crates() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            hits("crates/model/src/a.rs", src, PANIC_ON_DATA_PATH).len(),
            1
        );
        assert_eq!(
            hits("crates/agg/src/a.rs", src, PANIC_ON_DATA_PATH).len(),
            1
        );
        assert!(hits("crates/sim/src/a.rs", src, PANIC_ON_DATA_PATH).is_empty());
    }

    #[test]
    fn panic_lint_ignores_unwrap_or_and_tests() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_default(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { z.unwrap(); }\n}\n";
        assert!(hits("crates/model/src/a.rs", src, PANIC_ON_DATA_PATH).is_empty());
    }

    #[test]
    fn nan_lint_catches_unwrap_and_unwrap_or_even_wrapped() {
        let src = "fn f() {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                       w.max_by(|a, b| {\n        a.x\n            .partial_cmp(&b.x)\n\
                               .unwrap_or(std::cmp::Ordering::Equal)\n    });\n}\n";
        let v = hits("crates/core/src/a.rs", src, NAN_UNSAFE_ORDERING);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 5);
    }

    #[test]
    fn nan_lint_skips_trait_impls_and_total_cmp() {
        let src =
            "impl PartialOrd for X {\n    fn partial_cmp(&self, o: &X) -> Option<Ordering> {\n\
                           Some(self.cmp(o))\n    }\n}\nfn g() { v.sort_by(f64::total_cmp); }\n";
        assert!(hits("crates/core/src/a.rs", src, NAN_UNSAFE_ORDERING).is_empty());
    }

    #[test]
    fn hash_lint_flags_maps_and_sets_outside_tests() {
        let src =
            "use std::collections::HashMap;\nfn f() { let s: HashSet<u32> = HashSet::new(); }\n";
        let v = hits("crates/core/src/a.rs", src, NONDETERMINISTIC_ITERATION);
        assert_eq!(v.len(), 2);
        let src_test = "#[cfg(test)]\nmod tests {\n use std::collections::HashSet;\n}\n";
        assert!(hits("crates/core/src/a.rs", src_test, NONDETERMINISTIC_ITERATION).is_empty());
    }

    #[test]
    fn rng_lint_flags_ambient_entropy() {
        let src = "fn f() { let mut r = rand::thread_rng(); }\n";
        assert_eq!(hits("crates/sim/src/a.rs", src, UNSEEDED_RNG).len(), 1);
        let seeded = "fn f() { let mut r = Rng::stream(seed, &[1]); }\n";
        assert!(hits("crates/sim/src/a.rs", seeded, UNSEEDED_RNG).is_empty());
    }

    #[test]
    fn duration_lint_fires_on_ns_conversions_only() {
        let bad = "let secs = total_ns as f64 * 1e-9;\n";
        assert_eq!(
            hits("crates/trace/src/x.rs", bad, RAW_DURATION_ARITH).len(),
            1
        );
        let bad2 = "let dur_ns = (row.seconds * mult * 1e9).round() as u64;\n";
        assert_eq!(
            hits("crates/sim/src/x.rs", bad2, RAW_DURATION_ARITH).len(),
            1
        );
        // Bandwidth math and tolerances stay clean.
        let bw = "let t = bytes as f64 / (beta_gbs * 1e9);\n";
        assert!(hits("crates/sim/src/x.rs", bw, RAW_DURATION_ARITH).is_empty());
        let tol = "assert!(delta_seconds.abs() < 1e-9);\n";
        assert!(hits("crates/model/src/x.rs", tol, RAW_DURATION_ARITH).is_empty());
        // The units module itself is exempt.
        let units = "pub fn ns_to_secs(ns: u64) -> f64 { ns as f64 * 1e-9 }\n";
        assert!(hits("crates/trace/src/units.rs", units, RAW_DURATION_ARITH).is_empty());
    }

    #[test]
    fn patterns_inside_strings_do_not_fire() {
        let src = "let msg = \"call .unwrap() on a HashMap with thread_rng\";\n";
        for lint in [PANIC_ON_DATA_PATH, NONDETERMINISTIC_ITERATION, UNSEEDED_RNG] {
            assert!(
                hits("crates/model/src/a.rs", src, lint).is_empty(),
                "{lint}"
            );
        }
    }
}
