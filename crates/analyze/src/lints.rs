//! The project lint catalog.
//!
//! Each lint encodes an invariant the pipeline already depends on:
//!
//! * `panic-on-data-path` — the trace-load / aggregate / model-fit crates
//!   must surface typed errors, never panic, on data-dependent input
//!   (the fault-injection harness of PR 4 feeds them arbitrary garbage).
//! * `nan-unsafe-ordering` — `partial_cmp().unwrap()` panics on NaN and
//!   `unwrap_or(Equal)` silently mis-sorts it; orderings on floats must use
//!   `f64::total_cmp` or the NaN-ignoring statistics helpers.
//! * `nondeterministic-iteration` — `HashMap`/`HashSet` iteration order is
//!   randomized per process; anything that can reach a serialized artifact
//!   or a report table must use `BTreeMap`/`BTreeSet` or sort explicitly.
//! * `unseeded-rng` — all randomness must flow from the seeded splitmix64
//!   streams in `sim::noise` so fault plans and simulations replay
//!   identically; ambient-entropy constructors are banned.
//! * `raw-duration-arith` — ad-hoc `* 1e9` / `* 1e-9` conversions between
//!   `u64` nanoseconds and `f64` seconds drift apart one call site at a
//!   time; conversions go through `trace::units`.
//!
//! The second generation (token-tree backed, PR 10) guards the concurrency
//! and hot-path invariants the serve/streaming work depends on:
//!
//! * `hot-path-alloc` — per-iteration allocations in loop bodies of
//!   functions reachable from the annotated hot-path roots
//!   ([`HOT_PATH_ROOTS`]); a malloc per event is a throughput cliff at
//!   campaign scale.
//! * `swallowed-result` — `let _ = …` / trailing `.ok();` discarding a
//!   `Result` on non-test data paths hides I/O and channel failures.
//! * `blocking-in-worker` — file/stdio/sleep calls written directly inside
//!   rayon parallel closures or `thread::spawn` bodies stall an entire
//!   worker pool.
//! * `lock-order` — inconsistent Mutex/RwLock acquisition order across
//!   call sites is a latent deadlock; see [`crate::locks`].

use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Default severity a finding is reported at (drives the SARIF `level`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Static metadata of one lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lint {
    pub name: &'static str,
    pub summary: &'static str,
    pub severity: Severity,
    /// Whether the fix is mechanical enough for a future `--fix` pass
    /// (swap to a named helper/type) rather than a design change.
    pub autofixable: bool,
}

/// One finding, before suppression/baseline filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub lint: &'static str,
    pub path: String,
    /// 1-based.
    pub line: usize,
    pub message: String,
    pub snippet: String,
}

pub const PANIC_ON_DATA_PATH: &str = "panic-on-data-path";
pub const NAN_UNSAFE_ORDERING: &str = "nan-unsafe-ordering";
pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
pub const UNSEEDED_RNG: &str = "unseeded-rng";
pub const RAW_DURATION_ARITH: &str = "raw-duration-arith";
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
pub const SWALLOWED_RESULT: &str = "swallowed-result";
pub const BLOCKING_IN_WORKER: &str = "blocking-in-worker";
pub const LOCK_ORDER: &str = "lock-order";

/// The registry, in reporting order.
pub fn all_lints() -> &'static [Lint] {
    &[
        Lint {
            name: PANIC_ON_DATA_PATH,
            summary: "unwrap/expect/panic! in non-test code of the trace/agg/model data path",
            severity: Severity::Error,
            autofixable: false,
        },
        Lint {
            name: NAN_UNSAFE_ORDERING,
            summary: "partial_cmp with unwrap/unwrap_or on floats; use f64::total_cmp",
            severity: Severity::Error,
            autofixable: false,
        },
        Lint {
            name: NONDETERMINISTIC_ITERATION,
            summary: "HashMap/HashSet in non-test code; use BTreeMap/BTreeSet or sort",
            severity: Severity::Error,
            autofixable: true,
        },
        Lint {
            name: UNSEEDED_RNG,
            summary: "RNG from ambient entropy; use the seeded streams in sim::noise",
            severity: Severity::Error,
            autofixable: false,
        },
        Lint {
            name: RAW_DURATION_ARITH,
            summary: "inline ns<->s conversion arithmetic; use trace::units helpers",
            severity: Severity::Warning,
            autofixable: true,
        },
        Lint {
            name: HOT_PATH_ALLOC,
            summary: "allocation in a loop body of a function reachable from a hot-path root",
            severity: Severity::Warning,
            autofixable: false,
        },
        Lint {
            name: SWALLOWED_RESULT,
            summary: "`let _ =` / `.ok();` discarding a Result on a non-test data path",
            severity: Severity::Warning,
            autofixable: false,
        },
        Lint {
            name: BLOCKING_IN_WORKER,
            summary:
                "file/stdio/sleep call written directly inside a rayon closure or spawned thread",
            severity: Severity::Warning,
            autofixable: false,
        },
        Lint {
            name: LOCK_ORDER,
            summary: "Mutex/RwLock pairs acquired in conflicting orders across call sites",
            severity: Severity::Error,
            autofixable: false,
        },
    ]
}

/// Looks a lint up by name (cache entries round-trip through strings).
pub fn lint_by_name(name: &str) -> Option<&'static Lint> {
    all_lints().iter().find(|l| l.name == name)
}

/// Crates whose non-test code is a data path: they consume measurement data
/// (possibly corrupted) and must fail with typed errors instead of panicking.
const DATA_PATH_PREFIXES: &[&str] = &["crates/trace/src/", "crates/agg/src/", "crates/model/src/"];

/// Crates whose non-test code must not silently discard `Result`s.
const RESULT_PATH_PREFIXES: &[&str] = &[
    "crates/trace/src/",
    "crates/agg/src/",
    "crates/model/src/",
    "crates/obs/src/",
    "crates/core/src/",
];

/// The one file allowed to spell out ns<->s conversion constants.
const UNITS_FILE_SUFFIX: &str = "trace/src/units.rs";

/// Annotated hot-path roots: the entry points whose transitive callees make
/// up the per-event/per-kernel hot loops. Extend this list when a new
/// batch-scale entry point lands.
pub const HOT_PATH_ROOTS: &[&str] = &[
    "aggregate_experiment", // agg: per-rep/per-kernel aggregation
    "model_batch",          // model: cross-model sharded batch search
    "search_shapes",        // model: batched hypothesis-search kernel
    "analyze_rank",         // trace: per-rank timeline accounting
];

/// Runs every per-file lint over one parsed file. The cross-file lints
/// (`hot-path-alloc`, `lock-order`) run as a global phase over
/// [`hot_path_facts`] / [`crate::locks::lock_facts`].
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut out = check_file_v1(file);
    swallowed_result(file, &mut out);
    blocking_in_worker(file, &mut out);
    out.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    out
}

/// Runs exactly the five v1 (line-based) lints — the contract the golden
/// old-vs-new engine test pins across scrubber implementations.
pub fn check_file_v1(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    panic_on_data_path(file, &mut out);
    nan_unsafe_ordering(file, &mut out);
    nondeterministic_iteration(file, &mut out);
    unseeded_rng(file, &mut out);
    raw_duration_arith(file, &mut out);
    out.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    out
}

fn snippet(file: &SourceFile, line_idx: usize) -> String {
    file.lines
        .get(line_idx)
        .map(|l| l.raw.trim().to_string())
        .unwrap_or_default()
}

fn push(
    out: &mut Vec<Violation>,
    lint: &'static str,
    file: &SourceFile,
    line_idx: usize,
    msg: String,
) {
    out.push(Violation {
        lint,
        path: file.path.clone(),
        line: file.lines[line_idx].number,
        message: msg,
        snippet: snippet(file, line_idx),
    });
}

/// `panic-on-data-path`: panicking constructs in non-test code of the
/// trace/agg/model crates.
fn panic_on_data_path(file: &SourceFile, out: &mut Vec<Violation>) {
    if !DATA_PATH_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
        return;
    }
    const PATTERNS: &[(&str, &str)] = &[
        (".unwrap()", "unwrap() panics on the error/None case"),
        (".expect(", "expect() panics on the error/None case"),
        ("panic!(", "explicit panic"),
        (
            "unreachable!(",
            "unreachable!() is a panic on surprising data",
        ),
        ("todo!(", "todo!() panics"),
        ("unimplemented!(", "unimplemented!() panics"),
        (
            ".unwrap_unchecked(",
            "unwrap_unchecked is UB on the None case",
        ),
    ];
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test_code {
            continue;
        }
        for (pat, why) in PATTERNS {
            if line.scrubbed.contains(pat) {
                push(
                    out,
                    PANIC_ON_DATA_PATH,
                    file,
                    i,
                    format!(
                        "`{}` on a data path: {why}; return a typed error instead",
                        pat.trim_matches(['.', '('])
                    ),
                );
            }
        }
    }
}

/// `nan-unsafe-ordering`: `partial_cmp` immediately unwrapped (panics on
/// NaN) or defaulted (silently mis-sorts NaN). Patterns may span lines, so
/// the scan runs over the flattened scrubbed text.
fn nan_unsafe_ordering(file: &SourceFile, out: &mut Vec<Violation>) {
    let (text, offsets) = file.flat_scrubbed();
    const UNWRAPS: &[&str] = &[
        ".unwrap()",
        ".unwrap_or(",
        ".unwrap_or_else(",
        ".unwrap_or_default()",
        ".expect(",
    ];
    let mut start = 0;
    while let Some(found) = text[start..].find("partial_cmp") {
        let pos = start + found;
        start = pos + "partial_cmp".len();
        // Skip trait-impl definitions: `fn partial_cmp(...)`.
        let mut lo = pos.saturating_sub(16);
        while !text.is_char_boundary(lo) {
            lo -= 1;
        }
        if text[lo..pos].trim_end().ends_with("fn") {
            continue;
        }
        let line_idx = SourceFile::line_of_offset(&offsets, pos);
        if file.lines[line_idx].in_test_code {
            continue;
        }
        // The chained unwrap follows within the same expression; 200 chars
        // comfortably covers rustfmt-wrapped chains.
        let mut window_end = (pos + 200).min(text.len());
        while !text.is_char_boundary(window_end) {
            window_end += 1;
        }
        let window = &text[pos..window_end];
        if let Some(hit) = UNWRAPS.iter().find(|u| window.contains(**u)) {
            let verb = if hit.contains("unwrap_or") || hit.contains("expect(") {
                "defaults NaN comparisons, silently mis-sorting them"
            } else {
                "panics the moment a NaN reaches the comparison"
            };
            push(
                out,
                NAN_UNSAFE_ORDERING,
                file,
                line_idx,
                format!("`partial_cmp(){hit}` {verb}; use f64::total_cmp or a NaN-ignoring helper"),
            );
        }
    }
}

/// `nondeterministic-iteration`: any HashMap/HashSet in non-test code. Even
/// lookup-only maps are flagged — a later change can start iterating one
/// into a serialized artifact without touching the declaration site, so
/// justified uses must carry an explicit allow.
fn nondeterministic_iteration(file: &SourceFile, out: &mut Vec<Violation>) {
    const PATTERNS: &[&str] = &["HashMap", "HashSet"];
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test_code {
            continue;
        }
        for pat in PATTERNS {
            // `FxHashMap` etc. still match on the suffix; a preceding ident
            // char only happens for such aliases, so every match counts.
            if line.scrubbed.contains(pat) {
                push(
                    out,
                    NONDETERMINISTIC_ITERATION,
                    file,
                    i,
                    format!(
                        "`{pat}` iteration order is randomized per process; \
                         use BTree{} or sort before anything ordered/serialized",
                        &pat[4..]
                    ),
                );
                break;
            }
        }
    }
}

/// `unseeded-rng`: randomness constructed from ambient entropy instead of
/// the seeded splitmix64 streams (`sim::noise::Rng::new` / `Rng::stream`).
fn unseeded_rng(file: &SourceFile, out: &mut Vec<Violation>) {
    const PATTERNS: &[&str] = &[
        "thread_rng(",
        "from_entropy(",
        "rand::random",
        "OsRng",
        "getrandom(",
        "RandomState::new(",
        "from_os_rng(",
    ];
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test_code {
            continue;
        }
        for pat in PATTERNS {
            if line.scrubbed.contains(pat) {
                push(
                    out,
                    UNSEEDED_RNG,
                    file,
                    i,
                    format!(
                        "`{}` draws ambient entropy and breaks fault-plan replay; \
                         derive a seeded stream (sim::noise::Rng::stream) instead",
                        pat.trim_matches('(')
                    ),
                );
                break;
            }
        }
    }
}

/// `raw-duration-arith`: `* 1e9` / `* 1e-9` style ns<->s conversions outside
/// `trace::units`. Only fires when the statement visibly handles durations
/// (an identifier ending in `_ns`, or containing `secs`/`seconds`/
/// `elapsed`/`nanos`), so bandwidth math like `bytes / (gbs * 1e9)` passes.
fn raw_duration_arith(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.path.ends_with(UNITS_FILE_SUFFIX) {
        return;
    }
    const LITERALS: &[&str] = &["1e9", "1e-9", "1e+9", "1_000_000_000"];
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test_code {
            continue;
        }
        let text = &line.scrubbed;
        if !mentions_duration(text) {
            continue;
        }
        let hit = LITERALS.iter().any(|lit| {
            text.match_indices(lit).any(|(pos, _)| {
                // Exclude longer numbers (e.g. `1e-99`) and non-arithmetic
                // uses (comparisons like `< 1e-9` are tolerances, not
                // conversions).
                let after = text[pos + lit.len()..].chars().next();
                if matches!(after, Some(c) if c.is_ascii_digit() || c == '.' || c == '_') {
                    return false;
                }
                let before = text[..pos].trim_end().chars().last();
                let following = text[pos + lit.len()..].trim_start().chars().next();
                matches!(before, Some('*' | '/')) || matches!(following, Some('*' | '/'))
            })
        });
        if hit {
            push(
                out,
                RAW_DURATION_ARITH,
                file,
                i,
                "inline ns<->s conversion; use trace::units (ns_to_secs / secs_to_ns / NANOS_PER_SEC)"
                    .to_string(),
            );
        }
    }
}

fn mentions_duration(text: &str) -> bool {
    // Identifier-boundary-aware check for a `_ns`-suffixed name.
    let bytes = text.as_bytes();
    let has_ns_ident = text.match_indices("ns").any(|(pos, _)| {
        let before_ok = pos >= 1 && bytes[pos - 1] == b'_';
        let after = bytes.get(pos + 2);
        let after_ok = !matches!(after, Some(c) if c.is_ascii_alphanumeric() || *c == b'_');
        before_ok && after_ok
    });
    has_ns_ident
        || text.contains("secs")
        || text.contains("seconds")
        || text.contains("elapsed")
        || text.contains("nanos")
}

/// `swallowed-result`: `let _ = expr;` (except the infallible
/// `write!`/`writeln!`-into-String idiom) and statement-position `.ok();`
/// on the crates where a dropped `Result` hides an I/O or channel failure.
fn swallowed_result(file: &SourceFile, out: &mut Vec<Violation>) {
    if !RESULT_PATH_PREFIXES
        .iter()
        .any(|p| file.path.starts_with(p))
    {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test_code {
            continue;
        }
        let text = &line.scrubbed;
        if let Some(pos) = text.find("let _") {
            let rest = &text[pos + "let _".len()..];
            // `let _x = …` is a named discard — different idiom, skip.
            let named = rest
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
            let assigns = rest.trim_start().starts_with('=');
            let fmt_into_string = text.contains("write!") || text.contains("writeln!");
            if !named && assigns && !fmt_into_string {
                push(
                    out,
                    SWALLOWED_RESULT,
                    file,
                    i,
                    "`let _ =` discards the value — if it is a Result, the failure vanishes; \
                     handle/propagate it or justify with an allow"
                        .to_string(),
                );
                continue;
            }
        }
        // Statement-position `.ok();`: the Result dies on this line. Lines
        // that bind or return the Option (`let`, `=`, `return`) keep it.
        if text.contains(".ok();")
            && !text.contains("let ")
            && !text.contains("return")
            && !text.contains('=')
        {
            push(
                out,
                SWALLOWED_RESULT,
                file,
                i,
                "trailing `.ok();` swallows the error case; handle/propagate it \
                 or justify with an allow"
                    .to_string(),
            );
        }
    }
}

/// Methods/paths whose trailing statement is a worker region: everything
/// lexically inside the statement runs on a pool worker or spawned thread.
const WORKER_ENTRIES: &[&str] = &[
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_chunks",
    "par_chunks_mut",
    "par_windows",
    "par_bridge",
    "par_extend",
    "spawn",
    "scope",
];

/// `blocking-in-worker`: blocking calls written directly inside a rayon
/// parallel closure or a spawned-thread body. Regions are statement-scoped
/// (the closure text itself), so helpers *called from* a worker are not
/// flagged — the lint targets the direct "quick closure does file I/O"
/// mistake, not whole-program effect analysis.
fn blocking_in_worker(file: &SourceFile, out: &mut Vec<Violation>) {
    use crate::lexer::TokenKind;
    use crate::tree::statement_end;
    let toks = &file.tokens;
    let src = &file.src;
    if toks.is_empty() {
        return;
    }
    let mut regions: Vec<(usize, usize, usize)> = Vec::new(); // (start, end, entry_line)
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.token_in_test_code(i) {
            continue;
        }
        let name = t.text(src);
        if !WORKER_ENTRIES.contains(&name) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| toks[p].text(src));
        let qualified = match name {
            // Methods: `data.par_iter()`, `pool.spawn(…)`, `builder.spawn(…)`.
            "spawn" => matches!(prev, Some("." | ":")),
            // `rayon::scope` / `thread::scope` only — bare `scope` is a
            // common variable name.
            "scope" => matches!(prev, Some(":")),
            _ => matches!(prev, Some(".")),
        };
        let calls = toks
            .get(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Punct && n.text(src) == "(");
        if qualified && calls {
            let end = statement_end(src, toks, &file.tree.depth, i);
            regions.push((i, end, t.line));
        }
    }
    if regions.is_empty() {
        return;
    }
    const CALLS: &[(&str, &str, &str)] = &[
        // (ident, required neighbour, display)
        ("sleep", "(", "thread::sleep"),
        ("read_to_string", "(", "read_to_string"),
        ("OpenOptions", "", "OpenOptions"),
        ("File", ":", "File::open/create"),
        ("fs", ":", "std::fs"),
        ("stdin", "(", "stdin()"),
        ("stdout", "(", "stdout()"),
        ("stderr", "(", "stderr()"),
        ("println", "!", "println!"),
        ("eprintln", "!", "eprintln!"),
        ("print", "!", "print!"),
        ("eprint", "!", "eprint!"),
    ];
    let mut seen: BTreeSet<(usize, &str)> = BTreeSet::new();
    for (j, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.token_in_test_code(j) {
            continue;
        }
        let Some(&(_, _, entry_line)) = regions.iter().find(|&&(s, e, _)| j > s && j <= e) else {
            continue;
        };
        let name = t.text(src);
        for &(ident, neighbour, display) in CALLS {
            if name != ident {
                continue;
            }
            let next_ok = neighbour.is_empty()
                || toks
                    .get(j + 1)
                    .is_some_and(|n| n.kind == TokenKind::Punct && n.text(src) == neighbour);
            if next_ok && seen.insert((t.line, display)) {
                let line_idx = t.line.saturating_sub(1);
                push(
                    out,
                    BLOCKING_IN_WORKER,
                    file,
                    line_idx,
                    format!(
                        "`{display}` blocks inside the worker region starting at line \
                         {entry_line}; move I/O out of the parallel closure or justify \
                         with an allow"
                    ),
                );
            }
        }
    }
}

/// One allocation site inside a loop body, attributed to its function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    pub fn_name: String,
    /// 1-based.
    pub line: usize,
    /// Display form of the allocating construct (e.g. `vec![`).
    pub what: String,
    pub snippet: String,
}

/// Per-file inputs to the global `hot-path-alloc` phase. Serialized into
/// the incremental cache, so keep this flat and stringly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotPathFacts {
    /// Functions defined with bodies in this file.
    pub fns: Vec<String>,
    /// `(caller_fn, callee_ident)` call pairs, name-resolved later.
    pub calls: Vec<(String, String)>,
    /// Allocation sites in loop bodies.
    pub allocs: Vec<AllocSite>,
}

/// Extracts hot-path facts from one file. Only the hot-path crates
/// (trace/agg/model) contribute — the lint scopes where per-event work
/// lives, not the CLI glue.
pub fn hot_path_facts(file: &SourceFile) -> HotPathFacts {
    use crate::lexer::TokenKind;
    if !DATA_PATH_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
        return HotPathFacts::default();
    }
    let toks = &file.tokens;
    let src = &file.src;
    let mut facts = HotPathFacts::default();
    for f in &file.tree.functions {
        if f.body.is_some() && !file.lines[f.line.saturating_sub(1)].in_test_code {
            facts.fns.push(f.name.clone());
        }
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.token_in_test_code(i) {
            continue;
        }
        let name = t.text(src);
        let prev = i.checked_sub(1).map(|p| toks[p].text(src));
        let next = toks.get(i + 1).map(|n| n.text(src));
        // Call pairs: `ident(` not preceded by `fn` (that's a definition).
        if next == Some("(") && prev != Some("fn") {
            if let Some(caller) = file.tree.function_at(i) {
                facts.calls.push((caller.name.clone(), name.to_string()));
            }
        }
        // Allocation sites, only inside loop bodies.
        if !file.tree.in_loop_body(i) {
            continue;
        }
        let what: Option<String> = match name {
            "vec" | "format" if next == Some("!") => Some(format!("{name}![")),
            "to_vec" | "to_string" | "to_owned" | "collect" if prev == Some(".") => {
                Some(format!(".{name}()"))
            }
            "new" | "with_capacity" if prev == Some(":") => {
                // `Vec::new` / `String::new` / `Vec::with_capacity`.
                let owner = i
                    .checked_sub(3)
                    .map(|p| toks[p].text(src))
                    .filter(|o| *o == "Vec" || *o == "String");
                owner.map(|o| format!("{o}::{name}"))
            }
            _ => None,
        };
        if let Some(what) = what {
            // Error construction is cold by definition: `return Err(format!(…))`
            // inside a loop allocates only on the failure path. Scan back to
            // the statement boundary for an `Err`/`panic`/assert marker.
            let mut j = i;
            let mut error_path = false;
            while j > 0 {
                j -= 1;
                match toks[j].text(src) {
                    ";" | "{" | "}" => break,
                    "Err" | "panic" | "assert" | "unreachable" => {
                        error_path = true;
                        break;
                    }
                    _ => {}
                }
            }
            if error_path {
                continue;
            }
            if let Some(f) = file.tree.function_at(i) {
                facts.allocs.push(AllocSite {
                    fn_name: f.name.clone(),
                    line: t.line,
                    what,
                    snippet: snippet(file, t.line.saturating_sub(1)),
                });
            }
        }
    }
    facts.calls.sort();
    facts.calls.dedup();
    facts
}

/// Global `hot-path-alloc` phase: name-based reachability from
/// [`HOT_PATH_ROOTS`] over the union of per-file call pairs, then one
/// violation per loop-body allocation site in a reachable function.
pub fn hot_path_violations(facts: &BTreeMap<String, HotPathFacts>) -> Vec<Violation> {
    let defined: BTreeSet<&str> = facts
        .values()
        .flat_map(|f| f.fns.iter().map(String::as_str))
        .collect();
    let mut callees: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for f in facts.values() {
        for (caller, callee) in &f.calls {
            if defined.contains(callee.as_str()) {
                callees
                    .entry(caller.as_str())
                    .or_default()
                    .insert(callee.as_str());
            }
        }
    }
    // BFS, remembering which root first reached each function.
    let mut reached: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: Vec<(&str, &str)> = Vec::new();
    for root in HOT_PATH_ROOTS {
        if defined.contains(root) && !reached.contains_key(root) {
            reached.insert(root, root);
            queue.push((root, root));
        }
    }
    while let Some((f, root)) = queue.pop() {
        if let Some(next) = callees.get(f) {
            for callee in next {
                if !reached.contains_key(callee) {
                    reached.insert(callee, root);
                    queue.push((callee, root));
                }
            }
        }
    }
    let mut out = Vec::new();
    for (path, f) in facts {
        for site in &f.allocs {
            if let Some(root) = reached.get(site.fn_name.as_str()) {
                out.push(Violation {
                    lint: HOT_PATH_ALLOC,
                    path: path.clone(),
                    line: site.line,
                    message: format!(
                        "`{}` allocates every iteration inside `{}` (hot path via `{root}`); \
                         hoist the buffer out of the loop or reuse a scratch allocation",
                        site.what, site.fn_name
                    ),
                    snippet: site.snippet.clone(),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn hits(path: &str, src: &str, lint: &str) -> Vec<Violation> {
        let file = SourceFile::from_source(path, src);
        check_file(&file)
            .into_iter()
            .filter(|v| v.lint == lint)
            .collect()
    }

    #[test]
    fn panic_lint_scopes_to_data_path_crates() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            hits("crates/model/src/a.rs", src, PANIC_ON_DATA_PATH).len(),
            1
        );
        assert_eq!(
            hits("crates/agg/src/a.rs", src, PANIC_ON_DATA_PATH).len(),
            1
        );
        assert!(hits("crates/sim/src/a.rs", src, PANIC_ON_DATA_PATH).is_empty());
    }

    #[test]
    fn panic_lint_ignores_unwrap_or_and_tests() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_default(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { z.unwrap(); }\n}\n";
        assert!(hits("crates/model/src/a.rs", src, PANIC_ON_DATA_PATH).is_empty());
    }

    #[test]
    fn nan_lint_catches_unwrap_and_unwrap_or_even_wrapped() {
        let src = "fn f() {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                       w.max_by(|a, b| {\n        a.x\n            .partial_cmp(&b.x)\n\
                               .unwrap_or(std::cmp::Ordering::Equal)\n    });\n}\n";
        let v = hits("crates/core/src/a.rs", src, NAN_UNSAFE_ORDERING);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 5);
    }

    #[test]
    fn nan_lint_skips_trait_impls_and_total_cmp() {
        let src =
            "impl PartialOrd for X {\n    fn partial_cmp(&self, o: &X) -> Option<Ordering> {\n\
                           Some(self.cmp(o))\n    }\n}\nfn g() { v.sort_by(f64::total_cmp); }\n";
        assert!(hits("crates/core/src/a.rs", src, NAN_UNSAFE_ORDERING).is_empty());
    }

    #[test]
    fn hash_lint_flags_maps_and_sets_outside_tests() {
        let src =
            "use std::collections::HashMap;\nfn f() { let s: HashSet<u32> = HashSet::new(); }\n";
        let v = hits("crates/core/src/a.rs", src, NONDETERMINISTIC_ITERATION);
        assert_eq!(v.len(), 2);
        let src_test = "#[cfg(test)]\nmod tests {\n use std::collections::HashSet;\n}\n";
        assert!(hits("crates/core/src/a.rs", src_test, NONDETERMINISTIC_ITERATION).is_empty());
    }

    #[test]
    fn rng_lint_flags_ambient_entropy() {
        let src = "fn f() { let mut r = rand::thread_rng(); }\n";
        assert_eq!(hits("crates/sim/src/a.rs", src, UNSEEDED_RNG).len(), 1);
        let seeded = "fn f() { let mut r = Rng::stream(seed, &[1]); }\n";
        assert!(hits("crates/sim/src/a.rs", seeded, UNSEEDED_RNG).is_empty());
    }

    #[test]
    fn duration_lint_fires_on_ns_conversions_only() {
        let bad = "let secs = total_ns as f64 * 1e-9;\n";
        assert_eq!(
            hits("crates/trace/src/x.rs", bad, RAW_DURATION_ARITH).len(),
            1
        );
        let bad2 = "let dur_ns = (row.seconds * mult * 1e9).round() as u64;\n";
        assert_eq!(
            hits("crates/sim/src/x.rs", bad2, RAW_DURATION_ARITH).len(),
            1
        );
        // Bandwidth math and tolerances stay clean.
        let bw = "let t = bytes as f64 / (beta_gbs * 1e9);\n";
        assert!(hits("crates/sim/src/x.rs", bw, RAW_DURATION_ARITH).is_empty());
        let tol = "assert!(delta_seconds.abs() < 1e-9);\n";
        assert!(hits("crates/model/src/x.rs", tol, RAW_DURATION_ARITH).is_empty());
        // The units module itself is exempt.
        let units = "pub fn ns_to_secs(ns: u64) -> f64 { ns as f64 * 1e-9 }\n";
        assert!(hits("crates/trace/src/units.rs", units, RAW_DURATION_ARITH).is_empty());
    }

    #[test]
    fn patterns_inside_strings_do_not_fire() {
        let src = "let msg = \"call .unwrap() on a HashMap with thread_rng\";\n";
        for lint in [PANIC_ON_DATA_PATH, NONDETERMINISTIC_ITERATION, UNSEEDED_RNG] {
            assert!(
                hits("crates/model/src/a.rs", src, lint).is_empty(),
                "{lint}"
            );
        }
    }

    #[test]
    fn swallowed_result_flags_let_underscore_and_trailing_ok() {
        let src = "fn f() { let _ = tx.send(x); }\n";
        assert_eq!(hits("crates/core/src/a.rs", src, SWALLOWED_RESULT).len(), 1);
        let ok = "fn f() { file.sync_all().ok(); }\n";
        assert_eq!(hits("crates/obs/src/a.rs", ok, SWALLOWED_RESULT).len(), 1);
        // Out-of-scope crates and test code stay clean.
        assert!(hits("crates/sim/src/a.rs", src, SWALLOWED_RESULT).is_empty());
        assert!(hits("crates/core/tests/a.rs", src, SWALLOWED_RESULT).is_empty());
    }

    #[test]
    fn swallowed_result_permits_fmt_idiom_and_named_discards() {
        let fmt = "fn f() { let _ = writeln!(out, \"x\"); }\n";
        assert!(hits("crates/model/src/a.rs", fmt, SWALLOWED_RESULT).is_empty());
        let named = "fn f() { let _guard = m.lock(); }\n";
        assert!(hits("crates/core/src/a.rs", named, SWALLOWED_RESULT).is_empty());
        let bound = "fn f() { let v = x.parse::<u64>().ok(); }\n";
        assert!(hits("crates/core/src/a.rs", bound, SWALLOWED_RESULT).is_empty());
    }

    #[test]
    fn blocking_in_worker_flags_io_inside_rayon_closures() {
        let src = "fn f() { items.par_iter().for_each(|x| { std::fs::write(p, x).ok(); }); }\n";
        let v = hits("crates/core/src/a.rs", src, BLOCKING_IN_WORKER);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("std::fs"));
        // Same body outside a worker region is fine.
        let plain = "fn f() { std::fs::write(p, x).ok(); }\n";
        assert!(hits("crates/core/src/a.rs", plain, BLOCKING_IN_WORKER).is_empty());
    }

    #[test]
    fn blocking_in_worker_flags_sleep_in_spawned_thread() {
        let src =
            "fn f() { std::thread::spawn(move || { thread::sleep(d); println!(\"tick\"); }); }\n";
        let v = hits("crates/obs/src/a.rs", src, BLOCKING_IN_WORKER);
        assert_eq!(v.len(), 2);
        // Calling a helper from the worker is not flagged — statement scope.
        let helper = "fn f() { std::thread::spawn(run_loop); }\n";
        assert!(hits("crates/obs/src/a.rs", helper, BLOCKING_IN_WORKER).is_empty());
    }

    #[test]
    fn hot_path_alloc_reaches_through_the_call_graph() {
        let src = "pub fn aggregate_experiment(xs: &[u8]) {\n\
                       for x in xs { helper(x); }\n\
                   }\n\
                   fn helper(x: &u8) {\n\
                       for _ in 0..3 { let v = vec![x]; drop(v); }\n\
                   }\n\
                   fn unrelated() {\n\
                       for _ in 0..3 { let s = format!(\"x\"); drop(s); }\n\
                   }\n";
        let file = SourceFile::from_source("crates/agg/src/a.rs", src);
        let mut facts = BTreeMap::new();
        facts.insert(file.path.clone(), hot_path_facts(&file));
        let v = hot_path_violations(&facts);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
        assert!(v[0].message.contains("aggregate_experiment"));
    }

    #[test]
    fn hot_path_alloc_ignores_out_of_scope_crates_and_non_loops() {
        let src = "pub fn model_batch() { let v: Vec<u8> = xs.iter().collect(); }\n";
        let file = SourceFile::from_source("crates/model/src/a.rs", src);
        let mut facts = BTreeMap::new();
        facts.insert(file.path.clone(), hot_path_facts(&file));
        assert!(hot_path_violations(&facts).is_empty());
        // Same loop alloc in a non-hot-path crate contributes no facts.
        let loopy = "pub fn aggregate_experiment() { for _ in 0..2 { let v = vec![1]; } }\n";
        let other = SourceFile::from_source("crates/sim/src/a.rs", loopy);
        assert_eq!(hot_path_facts(&other), HotPathFacts::default());
    }

    #[test]
    fn registry_has_unique_names_and_severities() {
        let names: BTreeSet<&str> = all_lints().iter().map(|l| l.name).collect();
        assert_eq!(names.len(), all_lints().len());
        assert_eq!(
            lint_by_name(LOCK_ORDER).map(|l| l.severity),
            Some(Severity::Error)
        );
        assert_eq!(
            lint_by_name(HOT_PATH_ALLOC).map(|l| l.severity),
            Some(Severity::Warning)
        );
        assert!(lint_by_name("no-such-lint").is_none());
    }
}
