//! A hand-rolled Rust tokenizer.
//!
//! The analyzer's first generation scrubbed *lines* with a cross-line state
//! machine; this module replaces that with a real token stream so the
//! second-generation lints (lock-order, hot-path-alloc, …) can reason about
//! structure instead of text. The lexer covers the full surface the
//! workspace actually uses:
//!
//! * raw / byte / C strings with arbitrary hash counts (`r"…"`, `r##"…"##`,
//!   `br#"…"#`, `b"…"`, `c"…"`, `cr#"…"#`), spanning lines;
//! * char literals vs lifetimes (`'x'`, `'\n'`, `b'x'` vs `'a`, `'static`,
//!   `'_`);
//! * nested block comments and the doc-comment forms (`///`, `//!`,
//!   `/** */`, `/*! */`);
//! * int and float literals with radix prefixes, `_` separators, exponents
//!   and type suffixes — disambiguating `1.0` from `1..2` and `x.0`;
//! * raw identifiers (`r#match`).
//!
//! Tokens carry byte spans into the original source plus the 1-based line
//! they start on, so downstream passes can always recover exact text and
//! report positions. The lexer never fails: malformed input (unterminated
//! strings or comments) produces a token that runs to end of input, which is
//! exactly how a human reader would recover.

/// Token classification. Keywords are `Ident`s — the tree layer decides
/// which identifiers are structural.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#match`).
    Ident,
    /// `'a`, `'static`, `'_` — a tick not closed as a char literal.
    Lifetime,
    /// Integer literal, any radix, with optional suffix.
    Int,
    /// Float literal, including exponent forms and trailing-dot floats.
    Float,
    /// Cooked string or byte/C string: `"…"`, `b"…"`, `c"…"`.
    Str,
    /// Raw string of any prefix: `r"…"`, `r#"…"#`, `br##"…"##`, `cr"…"`.
    RawStr,
    /// Char or byte-char literal: `'x'`, `'\u{1F600}'`, `b'\n'`.
    Char,
    /// `//` comment that is not a doc comment.
    LineComment,
    /// `///`, `//!`, `/** */`, `/*! */` — prose, not directives.
    DocComment,
    /// `/* … */` (nests).
    BlockComment,
    /// One punctuation character (`::` is two tokens).
    Punct,
}

/// One lexed token: kind plus byte span and starting line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment | TokenKind::DocComment | TokenKind::BlockComment
        )
    }

    /// True for string/char literal kinds whose content must never reach a
    /// lint pattern.
    pub fn is_literal_text(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Str | TokenKind::RawStr | TokenKind::Char
        )
    }
}

/// Lexes a whole file. Whitespace is skipped (spans between consecutive
/// tokens are whitespace by construction); everything else becomes a token.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::with_capacity(src.len() / 6),
    };
    lx.run();
    lx.out
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, counting newlines. Saturates at end of input so
    /// multi-byte bumps (escape sequences, comment closers) near EOF can
    /// never push a token span past `src.len()`.
    fn bump(&mut self) {
        if self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    /// Advances `n` bytes, counting newlines.
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: usize) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => {
                    self.line_comment(start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment(start, line);
                }
                b'"' => {
                    self.bump();
                    self.cooked_string();
                    self.push(TokenKind::Str, start, line);
                }
                b'\'' => self.tick(start, line),
                b'0'..=b'9' => self.number(start, line),
                c if is_ident_start(c) => self.ident_or_prefixed(start, line),
                _ => {
                    // Punctuation — and any non-ASCII byte sequence that is
                    // not an identifier (multi-byte chars in code position are
                    // pathological; treat each as punct without splitting a
                    // UTF-8 sequence).
                    let width = utf8_width(c);
                    self.bump_n(width);
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
    }

    /// `//…` to end of line; `///` and `//!` classify as doc.
    fn line_comment(&mut self, start: usize, line: usize) {
        let is_doc = matches!(self.peek(2), Some(b'/' | b'!'));
        while let Some(c) = self.peek(0) {
            if c == b'\n' {
                break;
            }
            self.bump();
        }
        let kind = if is_doc {
            TokenKind::DocComment
        } else {
            TokenKind::LineComment
        };
        self.push(kind, start, line);
    }

    /// `/* … */` with nesting; `/**` (non-empty) and `/*!` classify as doc.
    fn block_comment(&mut self, start: usize, line: usize) {
        let is_doc = match self.peek(2) {
            Some(b'!') => true,
            // `/**/` is an empty plain comment, `/**…*/` is doc.
            Some(b'*') => self.peek(3) != Some(b'/'),
            _ => false,
        };
        self.bump_n(2);
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: token runs to EOF
            }
        }
        let kind = if is_doc {
            TokenKind::DocComment
        } else {
            TokenKind::BlockComment
        };
        self.push(kind, start, line);
    }

    /// Body of a cooked (escaped) string, starting after the opening quote.
    fn cooked_string(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Raw string body after the opening `r`/`br`/`cr`: `#…#"…"#…#`.
    /// Caller verified the shape; `hashes` were counted but not consumed.
    fn raw_string(&mut self, hashes: usize) {
        self.bump_n(hashes + 1); // hashes + opening quote
        while let Some(c) = self.peek(0) {
            if c == b'"' {
                let closes = (0..hashes).all(|k| self.peek(1 + k) == Some(b'#'));
                if closes {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    /// `'` — either a char literal or a lifetime.
    fn tick(&mut self, start: usize, line: usize) {
        self.bump(); // the tick
        match self.peek(0) {
            // Escaped char literal: `'\n'`, `'\u{…}'`, `'\''`.
            Some(b'\\') => {
                self.bump_n(2);
                while let Some(c) = self.peek(0) {
                    if c == b'\'' {
                        self.bump();
                        break;
                    }
                    if c == b'\n' {
                        break; // unterminated on this line; recover
                    }
                    self.bump();
                }
                self.push(TokenKind::Char, start, line);
            }
            Some(c) => {
                let w = utf8_width(c);
                if self.peek(w) == Some(b'\'') {
                    // `'x'` — a one-char literal (possibly multi-byte).
                    self.bump_n(w + 1);
                    self.push(TokenKind::Char, start, line);
                } else if c >= 0x80 {
                    // `'` then a non-ASCII char that isn't a closed literal:
                    // emit the tick alone as punct — bumping into the char
                    // would split its UTF-8 sequence. The main loop lexes
                    // the char itself next.
                    self.push(TokenKind::Punct, start, line);
                } else if is_ident_start(c) {
                    // Lifetime: consume the identifier.
                    self.bump();
                    while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
                        self.bump();
                    }
                    self.push(TokenKind::Lifetime, start, line);
                } else {
                    // A lone tick before punctuation — emit it as punct.
                    self.push(TokenKind::Punct, start, line);
                }
            }
            None => self.push(TokenKind::Punct, start, line),
        }
    }

    /// Identifier — or a string-prefix identifier (`r`, `b`, `c`, `br`,
    /// `cr`) that turns out to open a string, or a raw identifier `r#name`,
    /// or a byte-char `b'x'`.
    fn ident_or_prefixed(&mut self, start: usize, line: usize) {
        // String prefix? Check before consuming the identifier.
        if let Some((raw, hashes, prefix_len)) = self.string_prefix() {
            self.bump_n(prefix_len);
            if raw {
                self.raw_string(hashes);
                self.push(TokenKind::RawStr, start, line);
            } else {
                self.bump(); // opening quote
                self.cooked_string();
                self.push(TokenKind::Str, start, line);
            }
            return;
        }
        // Raw identifier `r#name`?
        if self.peek(0) == Some(b'r')
            && self.peek(1) == Some(b'#')
            && matches!(self.peek(2), Some(c) if is_ident_start(c))
        {
            self.bump_n(2);
        }
        // Byte char `b'x'` / `b'\n'`?
        if self.peek(0) == Some(b'b') && self.peek(1) == Some(b'\'') {
            self.bump(); // the b; tick() handles the rest
            self.tick(start, line);
            // tick() pushed a token spanning from `start`; reclassify the
            // lifetime case: `b'a` cannot be a lifetime, but if it lexed as
            // one, keep it — invalid Rust anyway.
            return;
        }
        while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
            self.bump();
        }
        // Multi-byte identifier chars (non-ASCII XID): accept alphanumeric.
        while let Some(c) = self.peek(0) {
            if c < 0x80 {
                break;
            }
            let w = utf8_width(c);
            let ch = self.src[self.pos..].chars().next().unwrap_or('\u{fffd}');
            if ch.is_alphanumeric() {
                self.bump_n(w);
                // Continue mixing ASCII ident chars after non-ASCII ones.
                while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
                    self.bump();
                }
            } else {
                break;
            }
        }
        if self.pos == start {
            // The leading char was non-ASCII but not alphanumeric (a pasted
            // NBSP, em-dash, curly quote, … in code position). Nothing above
            // consumed it; fall through to the punct path so the lexer
            // always makes progress instead of emitting a zero-width token
            // and looping forever.
            let width = utf8_width(self.peek(0).unwrap_or(0)).max(1);
            self.bump_n(width);
            self.push(TokenKind::Punct, start, line);
            return;
        }
        self.push(TokenKind::Ident, start, line);
    }

    /// Detects `r"`, `r#"`, `b"`, `br##"`, `c"`, `cr#"` at the cursor.
    /// Returns `(is_raw, hash_count, bytes_before_first_hash_or_quote)`.
    /// For non-raw forms the prefix length excludes the quote itself.
    fn string_prefix(&self) -> Option<(bool, usize, usize)> {
        let mut i = 0;
        if matches!(self.peek(i), Some(b'b' | b'c')) {
            i += 1;
        }
        let raw = self.peek(i) == Some(b'r');
        if raw {
            i += 1;
        }
        if i == 0 {
            return None;
        }
        if raw {
            let mut hashes = 0;
            while self.peek(i + hashes) == Some(b'#') {
                hashes += 1;
            }
            if self.peek(i + hashes) == Some(b'"') {
                // prefix_len runs through the last prefix letter; raw_string
                // consumes hashes + quote.
                return Some((true, hashes, i));
            }
            None
        } else if self.peek(i) == Some(b'"') {
            Some((false, 0, i))
        } else {
            None
        }
    }

    /// Number starting at a digit: int or float, any radix, suffixes.
    fn number(&mut self, start: usize, line: usize) {
        let radix_prefixed = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
        if radix_prefixed {
            self.bump_n(2);
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.bump();
            }
            self.push(TokenKind::Int, start, line);
            return;
        }
        // A digit run right after a single `.` is a tuple index (`x.0.1`),
        // never a float — but `0..0.5`'s `0.5` follows *two* dots and is one.
        let bytes = self.src.as_bytes();
        let tuple_index =
            start >= 1 && bytes[start - 1] == b'.' && (start < 2 || bytes[start - 2] != b'.');
        if tuple_index {
            self.digits();
            self.push(TokenKind::Int, start, line);
            return;
        }
        let mut float = false;
        self.digits();
        // Fractional part: `1.5`, `1.` — but not `1..2` (range) and not
        // `1.max(2)` (method call on an integer literal).
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(b'0'..=b'9') => {
                    float = true;
                    self.bump();
                    self.digits();
                }
                Some(b'.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    float = true;
                    self.bump(); // trailing-dot float `1.`
                }
            }
        }
        // Exponent: `1e9`, `2.5E-3`, `1e+4`. A bare `e` not followed by a
        // (signed) digit is a suffix, not an exponent (`9e` is invalid Rust;
        // don't loop on it).
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let (sign, digit) = (self.peek(1), self.peek(2));
            let exp = match sign {
                Some(b'0'..=b'9') => true,
                Some(b'+' | b'-') => matches!(digit, Some(b'0'..=b'9')),
                _ => false,
            };
            if exp {
                float = true;
                self.bump(); // e
                if matches!(self.peek(0), Some(b'+' | b'-')) {
                    self.bump();
                }
                self.digits();
            }
        }
        // Type suffix (`u64`, `f32`, `usize`): consume ident chars.
        if matches!(self.peek(0), Some(c) if is_ident_start(c)) {
            let suffix_start = self.pos;
            while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
                self.bump();
            }
            if self.src[suffix_start..self.pos].starts_with('f') {
                float = true; // 1f64
            }
        }
        let kind = if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, start, line);
    }

    fn digits(&mut self) {
        while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == b'_') {
            self.bump();
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Width in bytes of the UTF-8 sequence starting with `c`.
fn utf8_width(c: u8) -> usize {
    match c {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = kinds("let x = 42 + 0xFF_u8;");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "="),
                (TokenKind::Int, "42"),
                (TokenKind::Punct, "+"),
                (TokenKind::Int, "0xFF_u8"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn float_vs_range_vs_method() {
        assert_eq!(
            kinds("1.5 1. 1..2 1.max(2) x.0.1"),
            vec![
                (TokenKind::Float, "1.5"),
                (TokenKind::Float, "1."),
                (TokenKind::Int, "1"),
                (TokenKind::Punct, "."),
                (TokenKind::Punct, "."),
                (TokenKind::Int, "2"),
                (TokenKind::Int, "1"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "max"),
                (TokenKind::Punct, "("),
                (TokenKind::Int, "2"),
                (TokenKind::Punct, ")"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "."),
                (TokenKind::Int, "0"),
                (TokenKind::Punct, "."),
                (TokenKind::Int, "1"),
            ]
        );
    }

    #[test]
    fn exponent_floats_including_conversion_constants() {
        assert_eq!(
            kinds("1e9 1e-9 2.5E+3 1f64"),
            vec![
                (TokenKind::Float, "1e9"),
                (TokenKind::Float, "1e-9"),
                (TokenKind::Float, "2.5E+3"),
                (TokenKind::Float, "1f64"),
            ]
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        assert_eq!(
            kinds(r"'x' '\n' 'a 'static '_ b'q' '\u{1F600}'"),
            vec![
                (TokenKind::Char, "'x'"),
                (TokenKind::Char, r"'\n'"),
                (TokenKind::Lifetime, "'a"),
                (TokenKind::Lifetime, "'static"),
                (TokenKind::Lifetime, "'_"),
                (TokenKind::Char, "b'q'"),
                (TokenKind::Char, r"'\u{1F600}'"),
            ]
        );
    }

    #[test]
    fn multibyte_char_literal() {
        assert_eq!(kinds("'é'"), vec![(TokenKind::Char, "'é'")]);
    }

    #[test]
    fn string_forms() {
        assert_eq!(
            kinds(r####""a\"b" r"raw" r##"has "# inside"## b"bytes" br#"x"# c"c-str""####),
            vec![
                (TokenKind::Str, r#""a\"b""#),
                (TokenKind::RawStr, r#"r"raw""#),
                (TokenKind::RawStr, r###"r##"has "# inside"##"###),
                (TokenKind::Str, r#"b"bytes""#),
                (TokenKind::RawStr, r##"br#"x"#"##),
                (TokenKind::Str, r#"c"c-str""#),
            ]
        );
    }

    #[test]
    fn raw_string_spans_lines_and_counts_them() {
        let src = "r#\"one\ntwo\"# x";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::RawStr);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].text(src), "x");
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn raw_identifier_and_prefix_lookalikes() {
        assert_eq!(
            kinds("r#match br b rx(1)"),
            vec![
                (TokenKind::Ident, "r#match"),
                (TokenKind::Ident, "br"),
                (TokenKind::Ident, "b"),
                (TokenKind::Ident, "rx"),
                (TokenKind::Punct, "("),
                (TokenKind::Int, "1"),
                (TokenKind::Punct, ")"),
            ]
        );
    }

    #[test]
    fn comment_forms_classify() {
        let src = "// plain\n/// doc\n//! inner\n/* block */ /* a /* nested */ b */ /** docblock */ /*! inner */ /**/";
        let toks = lex(src);
        let kinds: Vec<TokenKind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::LineComment,
                TokenKind::DocComment,
                TokenKind::DocComment,
                TokenKind::BlockComment,
                TokenKind::BlockComment,
                TokenKind::DocComment,
                TokenKind::DocComment,
                TokenKind::BlockComment,
            ]
        );
        // The nested comment consumed its full extent.
        assert_eq!(toks[4].text(src), "/* a /* nested */ b */");
    }

    #[test]
    fn unterminated_tokens_run_to_eof() {
        // The trailing-backslash forms end mid-escape: the two-byte bump
        // must saturate at EOF, not run the span past `src.len()`.
        for src in [
            "\"never closed",
            "/* never closed",
            "r#\"never closed",
            "\"abc\\",
            "b\"abc\\",
            "'\\",
        ] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src:?}");
            assert_eq!(toks[0].end, src.len(), "{src:?}");
            toks[0].text(src); // must not panic
        }
    }

    #[test]
    fn non_ascii_punctuation_in_code_position_terminates() {
        // Pasted NBSP / em-dash / curly quotes between tokens must lex as
        // punct, not hang the lexer on a zero-width identifier.
        for src in [
            "let x\u{00A0}= 1;",
            "let y — = 2;",
            "let z = \u{2018}a\u{2019};",
            "'\u{00A0}x",
        ] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
            let total: usize = toks.iter().map(|t| t.end - t.start).sum();
            assert!(total > 0, "{src:?}");
            for t in &toks {
                assert!(t.end > t.start, "zero-width token in {src:?}: {t:?}");
                t.text(src); // spans must be valid char boundaries
            }
        }
        let src = "a\u{00A0}b";
        let toks = lex(src);
        assert_eq!(
            toks.iter().map(|t| (t.kind, t.text(src))).collect::<Vec<_>>(),
            vec![
                (TokenKind::Ident, "a"),
                (TokenKind::Punct, "\u{00A0}"),
                (TokenKind::Ident, "b"),
            ]
        );
    }

    #[test]
    fn line_numbers_track_every_token() {
        let src = "a\nb\n\nc /* x\ny */ d";
        let toks = lex(src);
        let lines: Vec<(String, usize)> = toks
            .iter()
            .map(|t| (t.text(src).to_string(), t.line))
            .collect();
        assert_eq!(
            lines,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 2),
                ("c".to_string(), 4),
                ("/* x\ny */".to_string(), 4),
                ("d".to_string(), 5),
            ]
        );
    }

    #[test]
    fn allow_marker_inside_raw_string_is_literal_text() {
        let src = "let s = r#\"// analyze:allow(panic-on-data-path)\"#;";
        let toks = lex(src);
        assert!(toks.iter().all(|t| !t.is_comment()));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::RawStr).count(),
            1
        );
    }
}
