//! CLI for `extradeep-analyze`.
//!
//! ```text
//! extradeep-analyze [--root DIR] [--baseline FILE] [--update-baseline]
//!                   [--json] [--bench-json FILE] [--list-lints]
//!                   [--verbose] [--quiet]
//! ```
//!
//! Exit codes: 0 — clean (no violations beyond the ratchet baseline);
//! 1 — new violations; 2 — usage or I/O error.

use extradeep_analyze::baseline::Baseline;
use extradeep_analyze::{
    analyze_tree, compare_to_baseline, lints, render_bench_json, render_human, render_json,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    json: bool,
    bench_json: Option<PathBuf>,
    list_lints: bool,
    verbose: bool,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        baseline: None,
        update_baseline: false,
        json: false,
        bench_json: None,
        list_lints: false,
        verbose: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root requires a directory")?,
                ))
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline requires a file")?,
                ))
            }
            "--update-baseline" => opts.update_baseline = true,
            "--json" => opts.json = true,
            "--bench-json" => {
                opts.bench_json = Some(PathBuf::from(
                    args.next().ok_or("--bench-json requires a file")?,
                ))
            }
            "--list-lints" => opts.list_lints = true,
            "--verbose" => opts.verbose = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

const HELP: &str = "extradeep-analyze: project-invariant static analysis

USAGE: extradeep-analyze [OPTIONS]

OPTIONS:
    --root DIR          workspace root (default: auto-detected from cwd)
    --baseline FILE     ratchet baseline (default: ROOT/analyze-baseline.json)
    --update-baseline   rewrite the baseline to current violation counts
    --json              emit the machine-readable report on stdout
    --bench-json FILE   write perf-history style lint-count metrics
    --list-lints        print the lint catalog and exit
    --verbose           also print suppressed findings
    --quiet             suppress the human report (exit code only)";

/// Finds the workspace root: the nearest ancestor of `start` containing a
/// `Cargo.toml` with a `[workspace]` table.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    if opts.list_lints {
        for lint in lints::all_lints() {
            println!("{:28} {}", lint.name, lint.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }
    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory; pass --root")?
        }
    };
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("analyze-baseline.json"));

    let result = analyze_tree(&root).map_err(|e| format!("scan failed: {e}"))?;
    result.publish_counters();

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Some(
            Baseline::from_json(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?,
        ),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(format!("{}: {e}", baseline_path.display())),
    };

    if opts.update_baseline {
        let updated = Baseline::from_violations(&result.violations);
        std::fs::write(&baseline_path, updated.to_json())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        if !opts.quiet {
            eprintln!(
                "wrote {} ({} frozen violation(s))",
                baseline_path.display(),
                updated.total()
            );
        }
    }

    let effective = if opts.update_baseline {
        Some(Baseline::from_violations(&result.violations))
    } else {
        baseline
    };
    let comparison = compare_to_baseline(&result, effective.as_ref());

    if let Some(path) = &opts.bench_json {
        std::fs::write(path, render_bench_json(&result))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    if opts.json {
        print!("{}", render_json(&result, &comparison));
    } else if !opts.quiet {
        print!("{}", render_human(&result, &comparison, opts.verbose));
    }

    if comparison.regressions.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("extradeep-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}
