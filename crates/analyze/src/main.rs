//! CLI for `extradeep-analyze`.
//!
//! ```text
//! extradeep-analyze [--root DIR] [--baseline FILE] [--update-baseline]
//!                   [--json] [--bench-json FILE] [--sarif FILE]
//!                   [--list-lints [--json]] [--no-cache] [--cache FILE]
//!                   [--verbose] [--quiet]
//! ```
//!
//! Exit codes: 0 — clean (no violations beyond the ratchet baseline, paid-down
//! debt included); 1 — new violations; 2 — usage or I/O error.

use extradeep_analyze::baseline::Baseline;
use extradeep_analyze::{
    analyze_tree_cached, compare_to_baseline, lints, ratchet_exit_code, render_bench_json,
    render_human, render_json, render_lints_json, sarif,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    json: bool,
    bench_json: Option<PathBuf>,
    sarif: Option<PathBuf>,
    list_lints: bool,
    cache: Option<PathBuf>,
    no_cache: bool,
    verbose: bool,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        baseline: None,
        update_baseline: false,
        json: false,
        bench_json: None,
        sarif: None,
        list_lints: false,
        cache: None,
        no_cache: false,
        verbose: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root requires a directory")?,
                ))
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline requires a file")?,
                ))
            }
            "--update-baseline" => opts.update_baseline = true,
            "--json" => opts.json = true,
            "--bench-json" => {
                opts.bench_json = Some(PathBuf::from(
                    args.next().ok_or("--bench-json requires a file")?,
                ))
            }
            "--sarif" => {
                opts.sarif = Some(PathBuf::from(args.next().ok_or("--sarif requires a file")?))
            }
            "--list-lints" => opts.list_lints = true,
            "--cache" => {
                opts.cache = Some(PathBuf::from(args.next().ok_or("--cache requires a file")?))
            }
            "--no-cache" => opts.no_cache = true,
            "--verbose" => opts.verbose = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                println!("{}", help_text());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

/// Help text, with the lint catalog generated from the registry so the CLI
/// and `--list-lints --json` can never disagree about what exists.
fn help_text() -> String {
    let mut out = String::from(
        "extradeep-analyze: project-invariant static analysis

USAGE: extradeep-analyze [OPTIONS]

OPTIONS:
    --root DIR          workspace root (default: auto-detected from cwd)
    --baseline FILE     ratchet baseline (default: ROOT/analyze-baseline.json)
    --update-baseline   rewrite the baseline to current violation counts
    --json              emit the machine-readable report on stdout
                        (with --list-lints: the lint catalog as JSON)
    --bench-json FILE   write perf-history style lint-count metrics
    --sarif FILE        write the findings as SARIF 2.1.0
    --list-lints        print the lint catalog and exit
    --cache FILE        incremental cache sidecar
                        (default: ROOT/target/analyze-cache.json)
    --no-cache          re-lex every file; neither read nor write the sidecar
    --verbose           also print suppressed findings
    --quiet             suppress the human report (exit code only)

LINTS:
",
    );
    for lint in lints::all_lints() {
        let sev = match lint.severity {
            lints::Severity::Error => "error",
            lints::Severity::Warning => "warn ",
        };
        out.push_str(&format!("    {:<28} [{sev}] {}\n", lint.name, lint.summary));
    }
    out.push_str("\nSuppress a finding with `// analyze:allow(<lint>) <justification>`.");
    out
}

/// Finds the workspace root: the nearest ancestor of `start` containing a
/// `Cargo.toml` with a `[workspace]` table.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    if opts.list_lints {
        if opts.json {
            print!("{}", render_lints_json());
        } else {
            for lint in lints::all_lints() {
                println!("{:28} {}", lint.name, lint.summary);
            }
        }
        return Ok(ExitCode::SUCCESS);
    }
    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory; pass --root")?
        }
    };
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("analyze-baseline.json"));
    let cache_path = if opts.no_cache {
        None
    } else {
        Some(
            opts.cache
                .unwrap_or_else(|| root.join("target/analyze-cache.json")),
        )
    };

    let result = analyze_tree_cached(&root, cache_path.as_deref())
        .map_err(|e| format!("scan failed: {e}"))?;
    result.publish_counters();

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Some(
            Baseline::from_json(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?,
        ),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(format!("{}: {e}", baseline_path.display())),
    };

    if opts.update_baseline {
        let updated = Baseline::from_violations(&result.violations);
        std::fs::write(&baseline_path, updated.to_json())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        if !opts.quiet {
            eprintln!(
                "wrote {} ({} frozen violation(s))",
                baseline_path.display(),
                updated.total()
            );
        }
    }

    let effective = if opts.update_baseline {
        Some(Baseline::from_violations(&result.violations))
    } else {
        baseline
    };
    let comparison = compare_to_baseline(&result, effective.as_ref());

    if let Some(path) = &opts.bench_json {
        std::fs::write(path, render_bench_json(&result))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    if let Some(path) = &opts.sarif {
        std::fs::write(path, sarif::render_sarif(&result))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    if opts.json {
        print!("{}", render_json(&result, &comparison));
    } else if !opts.quiet {
        print!("{}", render_human(&result, &comparison, opts.verbose));
    }

    Ok(ExitCode::from(ratchet_exit_code(&comparison) as u8))
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("extradeep-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}
