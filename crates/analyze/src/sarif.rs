//! SARIF 2.1.0 export, so CI can publish findings through the GitHub
//! code-scanning path and reviewers see them as inline annotations.
//!
//! One run, one driver (`extradeep-analyze`), one rule per lint (metadata
//! straight from the registry in [`crate::lints`]), one result per active
//! violation. Suppressed findings are *not* exported — an `analyze:allow`
//! with a justification is a reviewed decision, not an open finding.

use crate::json::Json;
use crate::lints::{all_lints, Severity};
use crate::AnalysisResult;
use std::collections::BTreeMap;

const SARIF_VERSION: &str = "2.1.0";
const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warning => "warning",
    }
}

/// Renders the full SARIF document for one analysis run.
pub fn render_sarif(result: &AnalysisResult) -> String {
    let rules = Json::Arr(
        all_lints()
            .iter()
            .map(|l| {
                Json::Obj(BTreeMap::from([
                    ("id".to_string(), Json::Str(l.name.to_string())),
                    (
                        "shortDescription".to_string(),
                        Json::Obj(BTreeMap::from([(
                            "text".to_string(),
                            Json::Str(l.summary.to_string()),
                        )])),
                    ),
                    (
                        "defaultConfiguration".to_string(),
                        Json::Obj(BTreeMap::from([(
                            "level".to_string(),
                            Json::Str(level(l.severity).to_string()),
                        )])),
                    ),
                    (
                        "properties".to_string(),
                        Json::Obj(BTreeMap::from([(
                            "autofixable".to_string(),
                            Json::Bool(l.autofixable),
                        )])),
                    ),
                ]))
            })
            .collect(),
    );
    let results = Json::Arr(
        result
            .violations
            .iter()
            .map(|v| {
                let sev = crate::lints::lint_by_name(v.lint)
                    .map(|l| l.severity)
                    .unwrap_or(Severity::Warning);
                Json::Obj(BTreeMap::from([
                    ("ruleId".to_string(), Json::Str(v.lint.to_string())),
                    ("level".to_string(), Json::Str(level(sev).to_string())),
                    (
                        "message".to_string(),
                        Json::Obj(BTreeMap::from([(
                            "text".to_string(),
                            Json::Str(v.message.clone()),
                        )])),
                    ),
                    (
                        "locations".to_string(),
                        Json::Arr(vec![Json::Obj(BTreeMap::from([(
                            "physicalLocation".to_string(),
                            Json::Obj(BTreeMap::from([
                                (
                                    "artifactLocation".to_string(),
                                    Json::Obj(BTreeMap::from([(
                                        "uri".to_string(),
                                        Json::Str(v.path.clone()),
                                    )])),
                                ),
                                (
                                    "region".to_string(),
                                    Json::Obj(BTreeMap::from([(
                                        "startLine".to_string(),
                                        Json::Num(v.line as f64),
                                    )])),
                                ),
                            ])),
                        )]))]),
                    ),
                ]))
            })
            .collect(),
    );
    let driver = Json::Obj(BTreeMap::from([
        (
            "name".to_string(),
            Json::Str("extradeep-analyze".to_string()),
        ),
        (
            "informationUri".to_string(),
            Json::Str("https://github.com/extra-deep/extradeep".to_string()),
        ),
        ("rules".to_string(), rules),
    ]));
    let run = Json::Obj(BTreeMap::from([
        (
            "tool".to_string(),
            Json::Obj(BTreeMap::from([("driver".to_string(), driver)])),
        ),
        ("results".to_string(), results),
    ]));
    Json::Obj(BTreeMap::from([
        ("$schema".to_string(), Json::Str(SARIF_SCHEMA.to_string())),
        ("version".to_string(), Json::Str(SARIF_VERSION.to_string())),
        ("runs".to_string(), Json::Arr(vec![run])),
    ]))
    .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::{Violation, LOCK_ORDER, RAW_DURATION_ARITH};

    fn result_with(violations: Vec<Violation>) -> AnalysisResult {
        AnalysisResult {
            violations,
            ..AnalysisResult::default()
        }
    }

    #[test]
    fn document_shape_is_sarif_2_1_0() {
        let doc = Json::parse(&render_sarif(&result_with(Vec::new()))).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(
            obj.get("version").and_then(Json::as_str),
            Some(SARIF_VERSION)
        );
        let Some(Json::Arr(runs)) = obj.get("runs") else {
            panic!("runs missing")
        };
        assert_eq!(runs.len(), 1);
        let run = runs[0].as_obj().unwrap();
        let driver = run["tool"].as_obj().unwrap()["driver"].as_obj().unwrap();
        assert_eq!(
            driver.get("name").and_then(Json::as_str),
            Some("extradeep-analyze")
        );
        let Some(Json::Arr(rules)) = driver.get("rules") else {
            panic!("rules missing")
        };
        assert_eq!(rules.len(), all_lints().len());
    }

    #[test]
    fn violations_become_results_with_levels_and_locations() {
        let v = vec![
            Violation {
                lint: LOCK_ORDER,
                path: "crates/obs/src/registry.rs".to_string(),
                line: 40,
                message: "cycle".to_string(),
                snippet: String::new(),
            },
            Violation {
                lint: RAW_DURATION_ARITH,
                path: "crates/sim/src/x.rs".to_string(),
                line: 7,
                message: "raw".to_string(),
                snippet: String::new(),
            },
        ];
        let doc = Json::parse(&render_sarif(&result_with(v))).unwrap();
        let text = doc.render_pretty();
        let runs = match doc.as_obj().unwrap().get("runs") {
            Some(Json::Arr(r)) => r,
            _ => panic!("runs"),
        };
        let results = match runs[0].as_obj().unwrap().get("results") {
            Some(Json::Arr(r)) => r,
            _ => panic!("results"),
        };
        assert_eq!(results.len(), 2);
        let first = results[0].as_obj().unwrap();
        assert_eq!(first.get("ruleId").and_then(Json::as_str), Some(LOCK_ORDER));
        assert_eq!(first.get("level").and_then(Json::as_str), Some("error"));
        let second = results[1].as_obj().unwrap();
        assert_eq!(second.get("level").and_then(Json::as_str), Some("warning"));
        assert!(text.contains("crates/obs/src/registry.rs"));
        assert!(text.contains("startLine"));
    }
}
