//! `lock-order`: cross-file Mutex/RwLock acquisition-order analysis.
//!
//! Per file, the extractor finds *declared locks* (`name: Mutex<…>`,
//! `static NAME: RwLock<…>`, `let m = Mutex::new(…)` — std and parking_lot
//! spell these the same way) and *acquisitions* (`.lock()` / `.read()` /
//! `.write()` with empty argument lists; `io::Read::read(buf)` never
//! matches because it takes arguments). A lock's identity is the last
//! segment of the receiver path, so `REGISTRY.threads.lock()` and
//! `self.threads.lock()` unify on `threads`.
//!
//! Each acquisition gets a *hold range*: a `let`-bound guard lives to the
//! end of its enclosing block (or an explicit `drop(guard)`), a temporary
//! guard to the end of its statement — which, for block-headed statements
//! like `for buf in X.lock().iter() { … }`, extends through the loop body.
//! Acquiring lock B inside lock A's hold range yields the edge `A → B`.
//!
//! Globally, edges whose endpoints are both *declared* locks somewhere in
//! the workspace form a directed graph; a cycle means two call sites can
//! deadlock. The diagnostic prints the full conflicting chain:
//! `a.rs:40 takes `threads` then `archived`; b.rs:77 takes `archived`
//! then `threads``.

use crate::lexer::TokenKind;
use crate::lints::{Violation, LOCK_ORDER};
use crate::source::SourceFile;
use crate::tree::{enclosing_block_close, statement_end};
use std::collections::{BTreeMap, BTreeSet};

/// One ordered pair of acquisitions: `first` is held when `second` is taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    pub first: String,
    pub second: String,
    /// 1-based line of the `first` acquisition.
    pub first_line: usize,
    /// 1-based line of the `second` acquisition.
    pub second_line: usize,
    /// Enclosing function of the first acquisition (empty at item scope).
    pub fn_name: String,
    /// Raw text of the first acquisition's line.
    pub snippet: String,
}

/// Per-file inputs to the global `lock-order` phase; serialized into the
/// incremental cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockFacts {
    /// Lock names declared in this file.
    pub declared: Vec<String>,
    /// Nested-acquisition edges observed in this file.
    pub edges: Vec<LockEdge>,
}

/// Receivers that look like locks but are stream handles.
const NOT_LOCKS: &[&str] = &["stdin", "stdout", "stderr", "io"];

/// Extracts declared locks and acquisition edges from one file.
pub fn lock_facts(file: &SourceFile) -> LockFacts {
    let toks = &file.tokens;
    let src = &file.src;
    let mut facts = LockFacts::default();
    if toks.is_empty() {
        return facts;
    }
    let text = |i: usize| toks[i].text(src);
    let is_punct = |i: usize, p: &str| toks[i].kind == TokenKind::Punct && text(i) == p;

    // --- Declared locks ---------------------------------------------------
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident || file.token_in_test_code(i) {
            continue;
        }
        let name = text(i);
        if name != "Mutex" && name != "RwLock" {
            continue;
        }
        // `field: Mutex<…>` / `static NAME: Mutex<…>`.
        if i >= 2 && is_punct(i - 1, ":") && toks[i - 2].kind == TokenKind::Ident {
            facts.declared.push(text(i - 2).to_string());
            continue;
        }
        // `… name = [Arc::new(] Mutex::new(…)` — walk back to the `=` of
        // this statement, then take the identifier before it.
        let ctor = i + 3 < toks.len()
            && is_punct(i + 1, ":")
            && is_punct(i + 2, ":")
            && toks[i + 3].kind == TokenKind::Ident
            && text(i + 3) == "new";
        if ctor {
            let mut k = i;
            while k > 0 {
                k -= 1;
                if is_punct(k, ";") || is_punct(k, "{") || is_punct(k, "}") {
                    break;
                }
                if is_punct(k, "=") && k >= 1 && toks[k - 1].kind == TokenKind::Ident {
                    facts.declared.push(text(k - 1).to_string());
                    break;
                }
            }
        }
    }
    facts.declared.sort();
    facts.declared.dedup();

    // --- Acquisitions with hold ranges ------------------------------------
    struct Acq {
        name: String,
        tok: usize,
        line: usize,
        hold_end: usize,
    }
    let mut acqs: Vec<Acq> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident || file.token_in_test_code(i) {
            continue;
        }
        let m = text(i);
        if m != "lock" && m != "read" && m != "write" {
            continue;
        }
        // `.lock()` with an EMPTY argument list — `read(buf)` is I/O.
        if i < 2 || !is_punct(i - 1, ".") || i + 2 >= toks.len() {
            continue;
        }
        if !is_punct(i + 1, "(") || !is_punct(i + 2, ")") {
            continue;
        }
        // Receiver = last path segment before the dot (skipping a call's
        // balanced parens, so `journal().read()` resolves to `journal`).
        let mut r = i - 2;
        if is_punct(r, ")") {
            let mut depth = 0i64;
            loop {
                if is_punct(r, ")") {
                    depth += 1;
                } else if is_punct(r, "(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if r == 0 {
                    break;
                }
                r -= 1;
            }
            if r == 0 {
                continue;
            }
            r -= 1;
        }
        if toks[r].kind != TokenKind::Ident {
            continue;
        }
        let name = text(r).to_string();
        if NOT_LOCKS.contains(&name.as_str()) || name == "self" {
            continue;
        }
        // Hold range: let-bound guards live to block end (or drop());
        // temporaries to statement end.
        let mut bound: Option<&str> = None;
        let mut k = i;
        while k > 0 {
            k -= 1;
            if is_punct(k, ";") || is_punct(k, "{") || is_punct(k, "}") {
                break;
            }
            if toks[k].kind == TokenKind::Ident && text(k) == "let" {
                // `let [mut] name = …` — skip `mut` so the drop() scan below
                // matches the real binding, not the keyword.
                let mut n = k + 1;
                if n < toks.len() && toks[n].kind == TokenKind::Ident && text(n) == "mut" {
                    n += 1;
                }
                if n < toks.len() {
                    bound = Some(text(n));
                }
                break;
            }
        }
        let hold_end = match bound {
            Some("_") => statement_end(src, toks, &file.tree.depth, i),
            Some(guard) => {
                let mut end = enclosing_block_close(src, toks, &file.tree.depth, i);
                // An explicit `drop(guard)` releases early.
                let mut d = i;
                while d + 3 < toks.len() && d + 3 <= end {
                    if toks[d].kind == TokenKind::Ident
                        && text(d) == "drop"
                        && is_punct(d + 1, "(")
                        && toks[d + 2].kind == TokenKind::Ident
                        && text(d + 2) == guard
                        && is_punct(d + 3, ")")
                    {
                        end = d;
                        break;
                    }
                    d += 1;
                }
                end
            }
            None => statement_end(src, toks, &file.tree.depth, i),
        };
        acqs.push(Acq {
            name,
            tok: i,
            line: toks[i].line,
            hold_end,
        });
    }

    // --- Edges -------------------------------------------------------------
    for a in &acqs {
        for b in &acqs {
            if b.tok > a.tok && b.tok <= a.hold_end && b.name != a.name {
                let fn_name = file
                    .tree
                    .function_at(a.tok)
                    .map(|f| f.name.clone())
                    .unwrap_or_default();
                let snippet = file
                    .lines
                    .get(a.line.saturating_sub(1))
                    .map(|l| l.raw.trim().to_string())
                    .unwrap_or_default();
                facts.edges.push(LockEdge {
                    first: a.name.clone(),
                    second: b.name.clone(),
                    first_line: a.line,
                    second_line: b.line,
                    fn_name,
                    snippet,
                });
            }
        }
    }
    facts.edges.sort_by(|x, y| {
        (&x.first, &x.second, x.first_line, x.second_line).cmp(&(
            &y.first,
            &y.second,
            y.first_line,
            y.second_line,
        ))
    });
    facts.edges.dedup();
    facts
}

/// One edge site in the global graph.
#[derive(Debug, Clone)]
struct Site {
    path: String,
    edge: LockEdge,
}

/// Global `lock-order` phase: union the declared-lock set, keep edges whose
/// endpoints are both declared locks, and report every cycle with its full
/// conflicting chain — one violation per cycle edge so the ratchet tracks
/// each offending file.
pub fn lock_order_violations(facts: &BTreeMap<String, LockFacts>) -> Vec<Violation> {
    let declared: BTreeSet<&str> = facts
        .values()
        .flat_map(|f| f.declared.iter().map(String::as_str))
        .collect();
    // First (lexicographically smallest) site per directed pair.
    let mut sites: BTreeMap<(String, String), Site> = BTreeMap::new();
    let mut graph: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (path, f) in facts {
        for e in &f.edges {
            if !declared.contains(e.first.as_str()) || !declared.contains(e.second.as_str()) {
                continue;
            }
            graph
                .entry(e.first.clone())
                .or_default()
                .insert(e.second.clone());
            sites
                .entry((e.first.clone(), e.second.clone()))
                .or_insert_with(|| Site {
                    path: path.clone(),
                    edge: e.clone(),
                });
        }
    }
    let cycles = find_cycles(&graph);
    let mut out = Vec::new();
    for cycle in cycles {
        // Chain description covering every edge of the cycle.
        let ring: Vec<&str> = cycle
            .iter()
            .map(String::as_str)
            .chain(std::iter::once(cycle[0].as_str()))
            .collect();
        let mut chain = String::new();
        for w in ring.windows(2) {
            let site = &sites[&(w[0].to_string(), w[1].to_string())];
            if !chain.is_empty() {
                chain.push_str("; ");
            }
            let ctx = if site.edge.fn_name.is_empty() {
                String::new()
            } else {
                format!(" (in `{}`)", site.edge.fn_name)
            };
            chain.push_str(&format!(
                "{}:{} takes `{}` then `{}`{ctx}",
                site.path, site.edge.first_line, w[0], w[1]
            ));
        }
        let order = ring.join(" -> ");
        for w in ring.windows(2) {
            let site = &sites[&(w[0].to_string(), w[1].to_string())];
            out.push(Violation {
                lint: LOCK_ORDER,
                path: site.path.clone(),
                line: site.edge.first_line,
                message: format!("lock-order cycle `{order}`: {chain}"),
                snippet: site.edge.snippet.clone(),
            });
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    out.dedup();
    out
}

/// Finds directed cycles by closing each edge: for every edge `u -> v`, a
/// shortest path `v ⇝ u` (BFS) plus the edge is an elementary cycle. DFS
/// back-edge detection misses cycles whose closing edge points at an
/// already-finished node (e.g. `a -> b -> c -> a` plus the chord `a -> c`
/// hides the `a -> c -> a` ring), leaving conflicting lock pairs unflagged
/// until the first cycle is fixed; closing every edge guarantees each edge
/// on *any* cycle appears in some reported ring. Cost is `E` BFS runs over
/// the declared-lock graph, which is tiny. Rings are normalized to start
/// at their smallest node and deduplicated.
fn find_cycles(graph: &BTreeMap<String, BTreeSet<String>>) -> Vec<Vec<String>> {
    let mut cycles: Vec<Vec<String>> = Vec::new();
    for (u, nexts) in graph {
        for v in nexts {
            if v == u {
                continue;
            }
            if let Some(path) = shortest_path(graph, v, u) {
                // path = [v, …, u]; the ring lists each node once, with the
                // closing `u -> v` edge implied by wrap-around.
                let mut ring = Vec::with_capacity(path.len());
                ring.push(u.clone());
                ring.extend(path[..path.len() - 1].iter().cloned());
                cycles.push(ring);
            }
        }
    }
    // Normalize each cycle to start at its smallest node, then dedupe.
    let mut normalized: Vec<Vec<String>> = cycles
        .into_iter()
        .map(|c| {
            let min = c
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| n.as_str())
                .map(|(i, _)| i)
                .unwrap_or(0);
            let mut r = c[min..].to_vec();
            r.extend_from_slice(&c[..min]);
            r
        })
        .collect();
    normalized.sort();
    normalized.dedup();
    normalized
}

/// BFS shortest path `from ⇝ to` along graph edges, inclusive of both
/// endpoints. Returns `None` when `to` is unreachable.
fn shortest_path(
    graph: &BTreeMap<String, BTreeSet<String>>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    use std::collections::VecDeque;
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    prev.insert(from, from);
    queue.push_back(from);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n.to_string()];
            let mut cur = n;
            while cur != from {
                cur = prev[cur];
                path.push(cur.to_string());
            }
            path.reverse();
            return Some(path);
        }
        if let Some(next) = graph.get(n) {
            for m in next {
                if !prev.contains_key(m.as_str()) {
                    prev.insert(m, n);
                    queue.push_back(m);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts_of(path: &str, src: &str) -> (String, LockFacts) {
        let file = SourceFile::from_source(path, src);
        (path.to_string(), lock_facts(&file))
    }

    fn violations(files: &[(&str, &str)]) -> Vec<Violation> {
        let mut map = BTreeMap::new();
        for (path, src) in files {
            let (p, f) = facts_of(path, src);
            map.insert(p, f);
        }
        lock_order_violations(&map)
    }

    #[test]
    fn declarations_cover_fields_statics_and_ctors() {
        let src = "struct S { threads: Mutex<Vec<u8>>, journal: RwLock<u8> }\n\
                   static ARCHIVE: Mutex<u8> = Mutex::new(0);\n\
                   fn f() { let gate = std::sync::Mutex::new(0); }\n";
        let (_, f) = facts_of("crates/x/src/a.rs", src);
        assert_eq!(f.declared, vec!["ARCHIVE", "gate", "journal", "threads"]);
    }

    #[test]
    fn nested_acquisition_produces_an_edge_sequential_does_not() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                   fn nested(s: &S) { let g = s.a.lock(); s.b.lock(); }\n\
                   fn sequential(s: &S) { { let g = s.a.lock(); } s.b.lock(); }\n";
        let (_, f) = facts_of("crates/x/src/a.rs", src);
        assert_eq!(f.edges.len(), 1, "{:?}", f.edges);
        assert_eq!(f.edges[0].first, "a");
        assert_eq!(f.edges[0].second, "b");
        assert_eq!(f.edges[0].fn_name, "nested");
    }

    #[test]
    fn temporary_guard_in_for_head_holds_through_the_body() {
        let src = "struct S { a: Mutex<Vec<u8>>, b: Mutex<u8> }\n\
                   fn f(s: &S) {\n\
                       for x in s.a.lock().iter() {\n\
                           s.b.lock();\n\
                       }\n\
                       s.b.lock();\n\
                   }\n";
        let (_, f) = facts_of("crates/x/src/a.rs", src);
        // Only the in-body acquisition nests; the one after the loop doesn't.
        assert_eq!(f.edges.len(), 1, "{:?}", f.edges);
        assert_eq!((f.edges[0].first_line, f.edges[0].second_line), (3, 4));
    }

    #[test]
    fn drop_releases_a_let_bound_guard_early() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                   fn f(s: &S) { let g = s.a.lock(); drop(g); s.b.lock(); }\n";
        let (_, f) = facts_of("crates/x/src/a.rs", src);
        assert!(f.edges.is_empty(), "{:?}", f.edges);
    }

    #[test]
    fn drop_releases_a_mut_guard_early() {
        // The binding is the token after `mut`, not `mut` itself — the
        // drop() scan must match `g`, or this would fabricate an a -> b edge.
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                   fn f(s: &S) { let mut g = s.a.lock(); drop(g); s.b.lock(); }\n";
        let (_, f) = facts_of("crates/x/src/a.rs", src);
        assert!(f.edges.is_empty(), "{:?}", f.edges);
    }

    #[test]
    fn let_underscore_guard_releases_at_statement_end() {
        // `let _ = x.lock();` drops the guard immediately; no edge to b.
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                   fn f(s: &S) { let _ = s.a.lock(); s.b.lock(); }\n";
        let (_, f) = facts_of("crates/x/src/a.rs", src);
        assert!(f.edges.is_empty(), "{:?}", f.edges);
    }

    #[test]
    fn read_with_arguments_is_not_an_acquisition() {
        let src = "struct S { buf: Mutex<u8> }\n\
                   fn f(r: &mut impl std::io::Read, buf: &mut [u8]) { r.read(buf); }\n\
                   fn g() { std::io::stdout().lock(); }\n";
        let (_, f) = facts_of("crates/x/src/a.rs", src);
        assert!(f.edges.is_empty());
        // stdout is excluded even though `.lock()` has empty parens.
    }

    #[test]
    fn two_file_inversion_is_a_cycle_with_full_chain() {
        let a = "struct S { registry: Mutex<u8>, journal: RwLock<u8> }\n\
                 fn take(s: &S) { let g = s.registry.lock(); s.journal.read(); }\n";
        let b = "fn flush(s: &super::S) { let g = s.journal.write(); s.registry.lock(); }\n";
        let v = violations(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)]);
        assert_eq!(v.len(), 2, "{v:?}");
        let msg = &v[0].message;
        assert!(msg.contains("journal -> registry -> journal"), "{msg}");
        assert!(
            msg.contains("crates/x/src/a.rs:2 takes `registry` then `journal`"),
            "{msg}"
        );
        assert!(
            msg.contains("crates/x/src/b.rs:1 takes `journal` then `registry`"),
            "{msg}"
        );
        assert!(msg.contains("(in `take`)"), "{msg}");
    }

    #[test]
    fn consistent_order_across_files_is_clean() {
        let a = "struct S { x: Mutex<u8>, y: Mutex<u8> }\n\
                 fn f(s: &S) { let g = s.x.lock(); s.y.lock(); }\n";
        let b = "fn h(s: &super::S) { let g = s.x.lock(); s.y.lock(); }\n";
        assert!(violations(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)]).is_empty());
    }

    #[test]
    fn undeclared_receivers_never_form_edges() {
        // `conn.read()` / `file.write()` style calls on things that are not
        // declared locks anywhere stay out of the graph.
        let a = "fn f(conn: &C, file: &F) { let g = conn.read(); file.write(); }\n\
                 fn h(conn: &C, file: &F) { let g = file.write(); conn.read(); }\n";
        assert!(violations(&[("crates/x/src/a.rs", a)]).is_empty());
    }

    #[test]
    fn chord_cycle_inside_one_scc_is_also_reported() {
        // a -> b -> c -> a plus the chord a -> c: the 2-ring a -> c -> a is
        // invisible to DFS back-edge detection (c is finished when a -> c is
        // walked) but must still be reported alongside the 3-ring.
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8>, c: Mutex<u8> }\n\
                   fn f1(s: &S) { let g = s.a.lock(); s.b.lock(); }\n\
                   fn f2(s: &S) { let g = s.b.lock(); s.c.lock(); }\n\
                   fn f3(s: &S) { let g = s.c.lock(); s.a.lock(); }\n\
                   fn f4(s: &S) { let g = s.a.lock(); s.c.lock(); }\n";
        let v = violations(&[("crates/x/src/a.rs", src)]);
        assert!(
            v.iter().any(|x| x.message.contains("a -> b -> c -> a")),
            "{v:?}"
        );
        assert!(
            v.iter().any(|x| x.message.contains("`a -> c -> a`")),
            "{v:?}"
        );
    }

    #[test]
    fn three_node_cycle_reports_every_edge() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8>, c: Mutex<u8> }\n\
                   fn f1(s: &S) { let g = s.a.lock(); s.b.lock(); }\n\
                   fn f2(s: &S) { let g = s.b.lock(); s.c.lock(); }\n\
                   fn f3(s: &S) { let g = s.c.lock(); s.a.lock(); }\n";
        let v = violations(&[("crates/x/src/a.rs", src)]);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.message.contains("a -> b -> c -> a")));
    }
}
