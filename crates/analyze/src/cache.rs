//! Incremental analysis cache: a JSON sidecar (by default under `target/`)
//! keyed by file content hash.
//!
//! Per file it stores the *pre-suppression* per-file findings, the allow
//! directives, and the extracted facts that feed the global phases
//! (`hot-path-alloc` reachability, the `lock-order` graph). On a warm run
//! only changed files are re-lexed; the global phases always recompute from
//! the union of facts, so cached and cold results are identical by
//! construction. A header fingerprint (engine version + lint list) fully
//! invalidates the cache when the analyzer itself changes.

use crate::json::Json;
use crate::lints::{lint_by_name, AllocSite, HotPathFacts, Violation};
use crate::locks::{LockEdge, LockFacts};
use crate::source::Allow;
use std::collections::BTreeMap;
use std::path::Path;

/// Bump when the record layout or lint semantics change in a way the
/// fingerprint's lint list does not capture.
const ENGINE_VERSION: &str = "v2.0";

/// Everything the engine knows about one file, reconstructible without
/// re-lexing it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileRecord {
    /// FNV-1a 64 of the file bytes.
    pub hash: u64,
    /// Per-file findings, pre-suppression.
    pub findings: Vec<Violation>,
    /// `(attached_code_line, allow)` pairs.
    pub allows: Vec<(usize, Allow)>,
    pub hot: HotPathFacts,
    pub locks: LockFacts,
}

/// The whole sidecar.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    pub files: BTreeMap<String, FileRecord>,
}

/// FNV-1a 64-bit content hash — stable, dependency-free, fast enough to be
/// invisible next to lexing.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The invalidation fingerprint: engine version plus the ordered lint list.
pub fn fingerprint() -> String {
    let names: Vec<&str> = crate::lints::all_lints().iter().map(|l| l.name).collect();
    format!("{ENGINE_VERSION}|{}", names.join(","))
}

impl Cache {
    /// Loads a sidecar. Any problem — missing file, parse error, fingerprint
    /// mismatch, unknown lint name — yields an empty cache: correctness
    /// never depends on the sidecar being readable.
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Cache::default();
        };
        parse_cache(&text).unwrap_or_default()
    }

    /// Writes the sidecar, creating parent directories as needed.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }

    fn render(&self) -> String {
        let files = Json::Obj(
            self.files
                .iter()
                .map(|(path, r)| (path.clone(), record_json(r)))
                .collect(),
        );
        Json::Obj(BTreeMap::from([
            ("version".to_string(), Json::Num(1.0)),
            ("fingerprint".to_string(), Json::Str(fingerprint())),
            ("files".to_string(), files),
        ]))
        .render_pretty()
    }
}

fn record_json(r: &FileRecord) -> Json {
    let findings = Json::Arr(
        r.findings
            .iter()
            .map(|v| {
                Json::Obj(BTreeMap::from([
                    ("lint".to_string(), Json::Str(v.lint.to_string())),
                    ("line".to_string(), Json::Num(v.line as f64)),
                    ("message".to_string(), Json::Str(v.message.clone())),
                    ("snippet".to_string(), Json::Str(v.snippet.clone())),
                ]))
            })
            .collect(),
    );
    let allows = Json::Arr(
        r.allows
            .iter()
            .map(|(attached, a)| {
                Json::Obj(BTreeMap::from([
                    ("attached".to_string(), Json::Num(*attached as f64)),
                    ("lint".to_string(), Json::Str(a.lint.clone())),
                    ("line".to_string(), Json::Num(a.line as f64)),
                    (
                        "justification".to_string(),
                        Json::Str(a.justification.clone()),
                    ),
                ]))
            })
            .collect(),
    );
    let hot = Json::Obj(BTreeMap::from([
        (
            "fns".to_string(),
            Json::Arr(r.hot.fns.iter().map(|f| Json::Str(f.clone())).collect()),
        ),
        (
            "calls".to_string(),
            Json::Arr(
                r.hot
                    .calls
                    .iter()
                    .map(|(a, b)| Json::Arr(vec![Json::Str(a.clone()), Json::Str(b.clone())]))
                    .collect(),
            ),
        ),
        (
            "allocs".to_string(),
            Json::Arr(
                r.hot
                    .allocs
                    .iter()
                    .map(|s| {
                        Json::Obj(BTreeMap::from([
                            ("fn".to_string(), Json::Str(s.fn_name.clone())),
                            ("line".to_string(), Json::Num(s.line as f64)),
                            ("what".to_string(), Json::Str(s.what.clone())),
                            ("snippet".to_string(), Json::Str(s.snippet.clone())),
                        ]))
                    })
                    .collect(),
            ),
        ),
    ]));
    let locks = Json::Obj(BTreeMap::from([
        (
            "declared".to_string(),
            Json::Arr(
                r.locks
                    .declared
                    .iter()
                    .map(|d| Json::Str(d.clone()))
                    .collect(),
            ),
        ),
        (
            "edges".to_string(),
            Json::Arr(
                r.locks
                    .edges
                    .iter()
                    .map(|e| {
                        Json::Obj(BTreeMap::from([
                            ("first".to_string(), Json::Str(e.first.clone())),
                            ("second".to_string(), Json::Str(e.second.clone())),
                            ("first_line".to_string(), Json::Num(e.first_line as f64)),
                            ("second_line".to_string(), Json::Num(e.second_line as f64)),
                            ("fn".to_string(), Json::Str(e.fn_name.clone())),
                            ("snippet".to_string(), Json::Str(e.snippet.clone())),
                        ]))
                    })
                    .collect(),
            ),
        ),
    ]));
    Json::Obj(BTreeMap::from([
        ("hash".to_string(), Json::Str(format!("{:016x}", r.hash))),
        ("findings".to_string(), findings),
        ("allows".to_string(), allows),
        ("hot".to_string(), hot),
        ("locks".to_string(), locks),
    ]))
}

fn parse_cache(text: &str) -> Option<Cache> {
    let doc = Json::parse(text).ok()?;
    let obj = doc.as_obj()?;
    if obj.get("version").and_then(Json::as_num) != Some(1.0) {
        return None;
    }
    if obj.get("fingerprint").and_then(Json::as_str) != Some(fingerprint().as_str()) {
        return None;
    }
    let mut cache = Cache::default();
    for (path, rec) in obj.get("files")?.as_obj()? {
        cache.files.insert(path.clone(), parse_record(rec)?);
    }
    Some(cache)
}

fn arr(j: Option<&Json>) -> Option<&Vec<Json>> {
    match j {
        Some(Json::Arr(v)) => Some(v),
        _ => None,
    }
}

fn num(j: Option<&Json>) -> Option<usize> {
    let n = j.and_then(Json::as_num)?;
    if n < 0.0 || n.fract() != 0.0 {
        return None;
    }
    Some(n as usize)
}

fn string(j: Option<&Json>) -> Option<String> {
    j.and_then(Json::as_str).map(str::to_string)
}

fn parse_record(rec: &Json) -> Option<FileRecord> {
    let o = rec.as_obj()?;
    let hash = u64::from_str_radix(o.get("hash").and_then(Json::as_str)?, 16).ok()?;
    let mut r = FileRecord {
        hash,
        ..FileRecord::default()
    };
    for f in arr(o.get("findings"))? {
        let fo = f.as_obj()?;
        // An unknown lint name means the catalog moved under us — treat the
        // whole sidecar as stale.
        let lint = lint_by_name(&string(fo.get("lint"))?)?;
        r.findings.push(Violation {
            lint: lint.name,
            path: String::new(), // re-stamped by the caller from the map key
            line: num(fo.get("line"))?,
            message: string(fo.get("message"))?,
            snippet: string(fo.get("snippet"))?,
        });
    }
    for a in arr(o.get("allows"))? {
        let ao = a.as_obj()?;
        r.allows.push((
            num(ao.get("attached"))?,
            Allow {
                lint: string(ao.get("lint"))?,
                justification: string(ao.get("justification"))?,
                line: num(ao.get("line"))?,
            },
        ));
    }
    let hot = o.get("hot")?.as_obj()?;
    for f in arr(hot.get("fns"))? {
        r.hot.fns.push(f.as_str()?.to_string());
    }
    for c in arr(hot.get("calls"))? {
        let pair = match c {
            Json::Arr(p) if p.len() == 2 => p,
            _ => return None,
        };
        r.hot
            .calls
            .push((pair[0].as_str()?.to_string(), pair[1].as_str()?.to_string()));
    }
    for s in arr(hot.get("allocs"))? {
        let so = s.as_obj()?;
        r.hot.allocs.push(AllocSite {
            fn_name: string(so.get("fn"))?,
            line: num(so.get("line"))?,
            what: string(so.get("what"))?,
            snippet: string(so.get("snippet"))?,
        });
    }
    let locks = o.get("locks")?.as_obj()?;
    for d in arr(locks.get("declared"))? {
        r.locks.declared.push(d.as_str()?.to_string());
    }
    for e in arr(locks.get("edges"))? {
        let eo = e.as_obj()?;
        r.locks.edges.push(LockEdge {
            first: string(eo.get("first"))?,
            second: string(eo.get("second"))?,
            first_line: num(eo.get("first_line"))?,
            second_line: num(eo.get("second_line"))?,
            fn_name: string(eo.get("fn"))?,
            snippet: string(eo.get("snippet"))?,
        });
    }
    Some(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints;

    fn sample_record() -> FileRecord {
        FileRecord {
            hash: fnv1a(b"fn main() {}"),
            findings: vec![Violation {
                lint: lints::PANIC_ON_DATA_PATH,
                path: String::new(),
                line: 3,
                message: "msg".to_string(),
                snippet: "x.unwrap()".to_string(),
            }],
            allows: vec![(
                4,
                Allow {
                    lint: "unseeded-rng".to_string(),
                    justification: "why".to_string(),
                    line: 4,
                },
            )],
            hot: HotPathFacts {
                fns: vec!["f".to_string()],
                calls: vec![("f".to_string(), "g".to_string())],
                allocs: vec![AllocSite {
                    fn_name: "f".to_string(),
                    line: 9,
                    what: "vec![".to_string(),
                    snippet: "let v = vec![];".to_string(),
                }],
            },
            locks: LockFacts {
                declared: vec!["threads".to_string()],
                edges: vec![LockEdge {
                    first: "threads".to_string(),
                    second: "archived".to_string(),
                    first_line: 1,
                    second_line: 2,
                    fn_name: "take".to_string(),
                    snippet: "threads.lock()".to_string(),
                }],
            },
        }
    }

    #[test]
    fn round_trips_records() {
        let mut cache = Cache::default();
        cache
            .files
            .insert("crates/x/src/a.rs".to_string(), sample_record());
        let parsed = parse_cache(&cache.render()).expect("parses");
        assert_eq!(parsed.files.len(), 1);
        assert_eq!(parsed.files["crates/x/src/a.rs"], sample_record());
    }

    #[test]
    fn fingerprint_mismatch_empties_the_cache() {
        let mut cache = Cache::default();
        cache.files.insert("a.rs".to_string(), sample_record());
        let doctored = cache.render().replace(&fingerprint(), "v0.0|other");
        assert!(parse_cache(&doctored).is_none());
    }

    #[test]
    fn unknown_lint_invalidates() {
        let mut rec = sample_record();
        rec.findings[0].snippet = "x".to_string();
        let mut cache = Cache::default();
        cache.files.insert("a.rs".to_string(), rec);
        // Only the finding's lint field — the fingerprint stays valid, so
        // this exercises the per-record unknown-lint path specifically.
        let doctored = cache.render().replace(
            "\"lint\": \"panic-on-data-path\"",
            "\"lint\": \"future-lint\"",
        );
        assert!(parse_cache(&doctored).is_none());
    }

    #[test]
    fn garbage_and_missing_files_load_empty() {
        assert!(Cache::load(Path::new("/nonexistent/cache.json"))
            .files
            .is_empty());
        assert!(parse_cache("not json").is_none());
        assert!(parse_cache("{}").is_none());
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
