//! Trace repair: salvage what validation flagged.
//!
//! [`crate::validate`] only *reports* problems; this module consumes a
//! profile with those problems and produces the best usable trace it can,
//! recording every intervention in a [`RepairReport`]. The philosophy is
//! the one the paper's workflow needs: Extra-Deep models from a *handful*
//! of small-scale profiles, so throwing away a whole measurement
//! configuration because one rank was truncated wastes data the model
//! cannot afford to lose — but silently fitting garbage is worse. Repair
//! therefore fixes what is mechanically fixable (mark order, step
//! numbering, missing epoch spans), quarantines what is not (ranks with no
//! events, ranks that lost all marks while their siblings kept them), and
//! reports everything.
//!
//! ```
//! use extradeep_trace::{repair_config, ConfigProfile, MeasurementConfig, TrainingMeta};
//! # let meta = TrainingMeta { batch_size: 1, train_samples: 1, val_samples: 0,
//! #     data_parallel: 1, model_parallel: 1, cores_per_rank: 1 };
//! let mut profile = ConfigProfile::new(MeasurementConfig::ranks(2), 0, meta);
//! let report = repair_config(&mut profile);
//! assert!(report.counts.marks_reconstructed == 0);
//! ```

use crate::marks::{EpochMark, StepMark, StepPhase};
use crate::profile::{ConfigProfile, ExperimentProfiles, RankProfile};
use crate::validate::validate_config;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Ratio over the fastest sibling's median training-step duration beyond
/// which a rank is quarantined as a straggler. A slow node inflates every
/// duration it reports by the same factor — invisible within the rank,
/// obvious against its siblings, and poison for the rank median when few
/// ranks are recorded.
pub const STRAGGLER_RATIO: f64 = 1.5;

/// One intervention performed on one rank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairAction {
    /// Swapped `start_ns`/`end_ns` of inverted step marks.
    FixedInvertedStepMarks { count: u32 },
    /// Swapped `start_ns`/`end_ns` of inverted epoch marks.
    FixedInvertedEpochMarks { count: u32 },
    /// Removed step marks that duplicated an `(epoch, step, phase)` key.
    RemovedDuplicateSteps { count: u32 },
    /// Re-sorted step marks into start-time order.
    ReorderedSteps,
    /// Renumbered step indices sequentially within each epoch/phase.
    RenumberedSteps { count: u32 },
    /// Rebuilt epoch marks from the extent of their step marks.
    ReconstructedEpochMarks { count: u32 },
    /// Synthesized training step marks over step-sized intra-epoch gaps
    /// left by dropped marks, re-attributing the orphaned events.
    ReconstructedStepMarks { count: u32 },
    /// Replaced zero-duration events with the rank's median duration for
    /// the same kernel (1 ns when the kernel has no nonzero sample).
    ClampedZeroDurations { count: u32 },
    /// The rank was removed from the configuration.
    Quarantined { reason: QuarantineReason },
}

/// Why a rank was quarantined rather than repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// No events: nothing to aggregate.
    NoEvents,
    /// No step or epoch marks while sibling ranks carry marks: its events
    /// cannot be attributed to steps and would skew the rank median.
    NoMarks,
    /// Median step duration more than [`STRAGGLER_RATIO`] above the fastest
    /// sibling's: a slow node inflated everything this rank reports.
    Straggler,
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::NoEvents => write!(f, "no events"),
            QuarantineReason::NoMarks => write!(f, "no marks while siblings have them"),
            QuarantineReason::Straggler => {
                write!(f, "straggler: durations inflated relative to siblings")
            }
        }
    }
}

impl fmt::Display for RepairAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairAction::FixedInvertedStepMarks { count } => {
                write!(f, "fixed {count} inverted step mark(s)")
            }
            RepairAction::FixedInvertedEpochMarks { count } => {
                write!(f, "fixed {count} inverted epoch mark(s)")
            }
            RepairAction::RemovedDuplicateSteps { count } => {
                write!(f, "removed {count} duplicate step mark(s)")
            }
            RepairAction::ReorderedSteps => write!(f, "reordered step marks"),
            RepairAction::RenumberedSteps { count } => {
                write!(f, "renumbered {count} step mark(s)")
            }
            RepairAction::ReconstructedEpochMarks { count } => {
                write!(f, "reconstructed {count} epoch mark(s) from step marks")
            }
            RepairAction::ReconstructedStepMarks { count } => {
                write!(
                    f,
                    "reconstructed {count} step mark(s) over dropped-mark gaps"
                )
            }
            RepairAction::ClampedZeroDurations { count } => {
                write!(f, "clamped {count} zero-duration event(s)")
            }
            RepairAction::Quarantined { reason } => write!(f, "quarantined: {reason}"),
        }
    }
}

/// Everything repair did to one rank of one configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankRepair {
    /// Stable configuration id (`app.x4`) plus repetition index.
    pub config: String,
    pub repetition: u32,
    pub rank: u32,
    pub actions: Vec<RepairAction>,
}

/// Aggregate counters over a whole repair pass — mirrored into `obs`
/// counters (`repair.ranks_quarantined`, `repair.marks_reconstructed`) so
/// degradation is visible without parsing the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RepairCounts {
    /// Validation issues found before repair ran.
    pub issues_found: u32,
    pub ranks_quarantined: u32,
    /// Of the quarantined ranks, how many were stragglers.
    pub stragglers_quarantined: u32,
    /// Configurations dropped because *no* rank survived quarantine.
    pub configs_dropped: u32,
    pub marks_reconstructed: u32,
    pub inverted_marks_fixed: u32,
    pub duplicate_steps_removed: u32,
    pub ranks_reordered: u32,
    pub steps_renumbered: u32,
    pub durations_clamped: u32,
}

impl RepairCounts {
    fn merge(&mut self, other: &RepairCounts) {
        self.issues_found += other.issues_found;
        self.ranks_quarantined += other.ranks_quarantined;
        self.stragglers_quarantined += other.stragglers_quarantined;
        self.configs_dropped += other.configs_dropped;
        self.marks_reconstructed += other.marks_reconstructed;
        self.inverted_marks_fixed += other.inverted_marks_fixed;
        self.duplicate_steps_removed += other.duplicate_steps_removed;
        self.ranks_reordered += other.ranks_reordered;
        self.steps_renumbered += other.steps_renumbered;
        self.durations_clamped += other.durations_clamped;
    }

    /// Total number of interventions (excluding issue counting).
    pub fn total_repairs(&self) -> u64 {
        self.ranks_quarantined as u64
            + self.configs_dropped as u64
            + self.marks_reconstructed as u64
            + self.inverted_marks_fixed as u64
            + self.duplicate_steps_removed as u64
            + self.ranks_reordered as u64
            + self.steps_renumbered as u64
            + self.durations_clamped as u64
    }
}

/// The outcome of repairing an experiment (or one configuration).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RepairReport {
    pub counts: RepairCounts,
    /// Per-rank interventions; ranks repair left untouched do not appear.
    pub ranks: Vec<RankRepair>,
}

impl RepairReport {
    pub fn is_clean(&self) -> bool {
        self.ranks.is_empty() && self.counts.total_repairs() == 0
    }

    fn merge(&mut self, other: RepairReport) {
        self.counts.merge(&other.counts);
        self.ranks.extend(other.ranks);
    }
}

impl fmt::Display for RepairReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "repair: profile clean, nothing to do");
        }
        let c = &self.counts;
        writeln!(
            f,
            "repair: {} issue(s) found, {} repair(s) across {} rank(s)",
            c.issues_found,
            c.total_repairs(),
            self.ranks.len()
        )?;
        writeln!(
            f,
            "  quarantined {} rank(s) ({} straggler(s)), dropped {} config(s), reconstructed {} epoch mark(s)",
            c.ranks_quarantined, c.stragglers_quarantined, c.configs_dropped, c.marks_reconstructed
        )?;
        for r in &self.ranks {
            for a in &r.actions {
                writeln!(
                    f,
                    "  {} rep {} rank {}: {}",
                    r.config, r.repetition, r.rank, a
                )?;
            }
        }
        Ok(())
    }
}

/// Repairs one rank in place. Returns the actions taken (quarantine is
/// decided by the caller, which sees all ranks of the configuration).
fn repair_rank(rank: &mut RankProfile) -> (Vec<RepairAction>, RepairCounts) {
    let mut actions = Vec::new();
    let mut counts = RepairCounts::default();

    // 1. Un-invert marks: swapped timestamps are the only reading under
    //    which an inverted mark carries information.
    let mut inverted_steps = 0u32;
    for m in &mut rank.step_marks {
        if m.end_ns < m.start_ns {
            std::mem::swap(&mut m.start_ns, &mut m.end_ns);
            inverted_steps += 1;
        }
    }
    if inverted_steps > 0 {
        actions.push(RepairAction::FixedInvertedStepMarks {
            count: inverted_steps,
        });
        counts.inverted_marks_fixed += inverted_steps;
    }
    let mut inverted_epochs = 0u32;
    for m in &mut rank.epoch_marks {
        if m.end_ns < m.start_ns {
            std::mem::swap(&mut m.start_ns, &mut m.end_ns);
            inverted_epochs += 1;
        }
    }
    if inverted_epochs > 0 {
        actions.push(RepairAction::FixedInvertedEpochMarks {
            count: inverted_epochs,
        });
        counts.inverted_marks_fixed += inverted_epochs;
    }

    // 2. Remove exact duplicate step marks (same key *and* same span — a
    //    double flush). Same-key marks with different spans are kept and
    //    renumbered below: they are distinct steps with wrong indices.
    let before = rank.step_marks.len();
    let mut seen = Vec::with_capacity(before);
    rank.step_marks.retain(|m| {
        if seen.contains(m) {
            false
        } else {
            seen.push(*m);
            true
        }
    });
    let removed = (before - rank.step_marks.len()) as u32;
    if removed > 0 {
        actions.push(RepairAction::RemovedDuplicateSteps { count: removed });
        counts.duplicate_steps_removed += removed;
    }

    // 3. Restore start-time order (aggregation windows assume it).
    let was_ordered = rank
        .step_marks
        .windows(2)
        .all(|w| w[0].start_ns <= w[1].start_ns);
    if !was_ordered {
        rank.step_marks.sort_by_key(|m| (m.start_ns, m.end_ns));
        actions.push(RepairAction::ReorderedSteps);
        counts.ranks_reordered += 1;
    }

    // 4. Reconstruct dropped step marks from intra-epoch gaps: surviving
    //    steps tile their epoch nearly contiguously (only partially
    //    overlapped async communication sits between them), so a hole of
    //    roughly a step's width between two same-epoch training marks is
    //    where a dropped mark's events fell out of attribution. A
    //    synthesized mark over the gap brings them back and keeps the
    //    per-epoch step count honest. Each synthesized mark borrows its
    //    successor's index — the collision deliberately trips the renumber
    //    pass below, which rewrites the whole epoch sequentially.
    let mut synthesized = 0u32;
    {
        let mut durs: Vec<u64> = rank
            .step_marks
            .iter()
            .filter(|m| m.phase == StepPhase::Training)
            .map(|m| m.duration_ns())
            .filter(|&d| d > 0)
            .collect();
        if !durs.is_empty() {
            durs.sort_unstable();
            let typical = durs[durs.len() / 2];
            let mut added: Vec<StepMark> = Vec::new();
            for w in rank.step_marks.windows(2) {
                let (a, b) = (w[0], w[1]);
                if a.epoch != b.epoch
                    || a.phase != StepPhase::Training
                    || b.phase != StepPhase::Training
                    || b.start_ns <= a.end_ns
                {
                    continue;
                }
                let gap = b.start_ns - a.end_ns;
                if (gap as f64) < 0.75 * typical as f64 {
                    continue;
                }
                let n = ((gap as f64 / typical as f64).round() as u64).clamp(1, 64);
                let width = gap / n;
                for k in 0..n {
                    let start = a.end_ns + k * width;
                    let end = if k + 1 == n {
                        b.start_ns
                    } else {
                        start + width
                    };
                    added.push(StepMark::new(
                        a.epoch,
                        b.step,
                        StepPhase::Training,
                        start,
                        end,
                    ));
                }
            }
            if !added.is_empty() {
                synthesized = added.len() as u32;
                rank.step_marks.extend(added);
                rank.step_marks.sort_by_key(|m| (m.start_ns, m.end_ns));
            }
        }
    }
    if synthesized > 0 {
        actions.push(RepairAction::ReconstructedStepMarks { count: synthesized });
        counts.marks_reconstructed += synthesized;
    }

    // 5. Renumber step indices sequentially per (epoch, phase) when the
    //    recorded indices collide or regress in time order.
    let mut renumbered = 0u32;
    {
        use std::collections::BTreeMap;
        let mut next: BTreeMap<(u32, u8), u32> = BTreeMap::new();
        let mut used: BTreeMap<(u32, u8), Vec<u32>> = BTreeMap::new();
        for m in &rank.step_marks {
            used.entry((m.epoch, m.phase as u8))
                .or_default()
                .push(m.step);
        }
        let needs_renumber: Vec<(u32, u8)> = used
            .iter()
            .filter(|(_, steps)| {
                let mut s = (*steps).clone();
                s.sort_unstable();
                s.windows(2).any(|w| w[0] == w[1])
            })
            .map(|(k, _)| *k)
            .collect();
        for m in &mut rank.step_marks {
            let key = (m.epoch, m.phase as u8);
            if needs_renumber.contains(&key) {
                let n = next.entry(key).or_insert(0);
                if m.step != *n {
                    m.step = *n;
                    renumbered += 1;
                }
                *n += 1;
            }
        }
    }
    if renumbered > 0 {
        actions.push(RepairAction::RenumberedSteps { count: renumbered });
        counts.steps_renumbered += renumbered;
    }

    // 6. Reconstruct missing epoch marks from the extent of their steps:
    //    the epoch callback brackets its steps, so the union of step spans
    //    is a tight lower estimate of the epoch span.
    let mut reconstructed = 0u32;
    if !rank.step_marks.is_empty() {
        let mut epochs: Vec<u32> = rank.step_marks.iter().map(|m| m.epoch).collect();
        epochs.sort_unstable();
        epochs.dedup();
        for epoch in epochs {
            if rank.epoch_marks.iter().any(|e| e.epoch == epoch) {
                continue;
            }
            let steps = rank.step_marks.iter().filter(|m| m.epoch == epoch);
            let (mut start, mut end) = (u64::MAX, 0u64);
            for m in steps {
                start = start.min(m.start_ns);
                end = end.max(m.end_ns);
            }
            if start <= end {
                rank.epoch_marks.push(EpochMark::new(epoch, start, end));
                reconstructed += 1;
            }
        }
        if reconstructed > 0 {
            rank.epoch_marks.sort_by_key(|e| (e.start_ns, e.epoch));
            actions.push(RepairAction::ReconstructedEpochMarks {
                count: reconstructed,
            });
            counts.marks_reconstructed += reconstructed;
        }
    }

    // 7. Zero durations: an exporter artifact (rounding, a wrapped counter
    //    clamped to zero) that hides real time. The kernel's other
    //    executions on the same rank are the best estimate of what was
    //    lost, so impute their median — clamping to 1 ns would keep the
    //    visit countable but systematically bias total time low when many
    //    events are affected. 1 ns remains the fallback for kernels with
    //    no nonzero sample.
    let mut clamped = 0u32;
    if rank.events.iter().any(|e| e.duration_ns == 0) {
        use std::collections::BTreeMap;
        use std::sync::Arc;
        let mut samples: BTreeMap<Arc<str>, Vec<u64>> = BTreeMap::new();
        for e in &rank.events {
            if e.duration_ns > 0 {
                samples
                    .entry(Arc::clone(&e.name))
                    .or_default()
                    .push(e.duration_ns);
            }
        }
        let medians: BTreeMap<Arc<str>, u64> = samples
            .into_iter()
            .map(|(name, mut durs)| {
                durs.sort_unstable();
                let m = durs[durs.len() / 2];
                (name, m)
            })
            .collect();
        for e in &mut rank.events {
            if e.duration_ns == 0 {
                e.duration_ns = medians.get(&e.name).copied().unwrap_or(1);
                clamped += 1;
            }
        }
    }
    if clamped > 0 {
        actions.push(RepairAction::ClampedZeroDurations { count: clamped });
        counts.durations_clamped += clamped;
    }

    (actions, counts)
}

/// A rank's duration scale for cross-rank straggler comparison: the median
/// training-step-mark duration, falling back to the median epoch-mark
/// duration for ranks without usable step marks. `None` when neither kind
/// of mark carries a positive duration (such ranks cannot be judged).
fn rank_duration_scale(rank: &RankProfile) -> Option<f64> {
    let mut durs: Vec<u64> = rank
        .step_marks
        .iter()
        .filter(|m| m.phase == StepPhase::Training)
        .map(|m| m.duration_ns())
        .filter(|&d| d > 0)
        .collect();
    if durs.is_empty() {
        durs = rank
            .epoch_marks
            .iter()
            .map(|m| m.duration_ns())
            .filter(|&d| d > 0)
            .collect();
    }
    if durs.is_empty() {
        return None;
    }
    durs.sort_unstable();
    Some(durs[durs.len() / 2] as f64)
}

/// Repairs one configuration profile in place, quarantining unrecoverable
/// ranks. Quarantine never empties the configuration unless *no* rank has
/// events at all (the caller drops such configurations).
pub fn repair_config(profile: &mut ConfigProfile) -> RepairReport {
    let _span = extradeep_obs::span("trace.repair");
    let mut report = RepairReport {
        counts: RepairCounts {
            issues_found: validate_config(profile).len() as u32,
            ..RepairCounts::default()
        },
        ranks: Vec::new(),
    };

    let config_id = profile.config.id();
    let repetition = profile.repetition;

    // Per-rank mechanical repairs first.
    for rank in &mut profile.ranks {
        let (actions, counts) = repair_rank(rank);
        report.counts.merge(&counts);
        if !actions.is_empty() {
            report.ranks.push(RankRepair {
                config: config_id.clone(),
                repetition,
                rank: rank.rank,
                actions,
            });
        }
    }

    // Quarantine decisions need the whole configuration in view.
    let any_marks = profile
        .ranks
        .iter()
        .any(|r| !r.step_marks.is_empty() || !r.epoch_marks.is_empty());
    let mut quarantined: Vec<(u32, QuarantineReason)> = Vec::new();
    profile.ranks.retain(|r| {
        let reason = if r.events.is_empty() {
            Some(QuarantineReason::NoEvents)
        } else if any_marks && r.step_marks.is_empty() && r.epoch_marks.is_empty() {
            Some(QuarantineReason::NoMarks)
        } else {
            None
        };
        match reason {
            Some(reason) => {
                quarantined.push((r.rank, reason));
                false
            }
            None => true,
        }
    });
    // Straggler quarantine, on the survivors: a rank whose median step
    // duration sits far above the *fastest* sibling's was inflated
    // wholesale by a slow node. The fastest rank is the reference because
    // a straggler can never be it, so at least one rank always survives
    // this pass (and uniform slowness — every rank inflated alike — is
    // indistinguishable from a slow run and intentionally left alone).
    let scales: Vec<(u32, f64)> = profile
        .ranks
        .iter()
        .filter_map(|r| rank_duration_scale(r).map(|s| (r.rank, s)))
        .collect();
    if scales.len() >= 2 {
        let fastest = scales.iter().fold(f64::INFINITY, |a, &(_, s)| a.min(s));
        let slow: Vec<u32> = scales
            .iter()
            .filter(|&&(_, s)| s > STRAGGLER_RATIO * fastest)
            .map(|&(r, _)| r)
            .collect();
        profile.ranks.retain(|r| {
            if slow.contains(&r.rank) {
                quarantined.push((r.rank, QuarantineReason::Straggler));
                false
            } else {
                true
            }
        });
    }

    for (rank, reason) in quarantined {
        report.counts.ranks_quarantined += 1;
        if reason == QuarantineReason::Straggler {
            report.counts.stragglers_quarantined += 1;
        }
        let entry = report
            .ranks
            .iter_mut()
            .find(|e| e.rank == rank && e.config == config_id && e.repetition == repetition);
        let action = RepairAction::Quarantined { reason };
        match entry {
            Some(e) => e.actions.push(action),
            None => report.ranks.push(RankRepair {
                config: config_id.clone(),
                repetition,
                rank,
                actions: vec![action],
            }),
        }
    }

    extradeep_obs::counter("repair.ranks_quarantined").add(report.counts.ranks_quarantined as u64);
    extradeep_obs::counter("repair.marks_reconstructed")
        .add(report.counts.marks_reconstructed as u64);
    report
}

/// Repairs every configuration of an experiment in place, dropping
/// configurations that end up with no usable rank, and returns the merged
/// report.
pub fn repair_experiment(experiment: &mut ExperimentProfiles) -> RepairReport {
    let _span = extradeep_obs::span("trace.repair_experiment");
    let mut report = RepairReport::default();
    experiment.profiles.retain_mut(|profile| {
        report.merge(repair_config(profile));
        if profile.ranks.is_empty() {
            report.counts.configs_dropped += 1;
            false
        } else {
            true
        }
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::config::{MeasurementConfig, TrainingMeta};
    use crate::domain::ApiDomain;
    use crate::marks::StepPhase;
    use crate::validate::validate_rank;

    fn meta() -> TrainingMeta {
        TrainingMeta {
            batch_size: 1,
            train_samples: 1,
            val_samples: 0,
            data_parallel: 1,
            model_parallel: 1,
            cores_per_rank: 1,
        }
    }

    fn healthy_rank(rank: u32, epochs: u32, steps: u32) -> RankProfile {
        paced_rank(rank, epochs, steps, 1_000)
    }

    fn paced_rank(rank: u32, epochs: u32, steps: u32, kernel_ns: u64) -> RankProfile {
        let mut b = TraceBuilder::new(rank);
        for e in 0..epochs {
            b.begin_epoch(e);
            for s in 0..steps {
                b.begin_step(e, s, StepPhase::Training);
                b.emit("k", ApiDomain::CudaKernel, kernel_ns);
                b.end_step();
            }
            b.end_epoch();
        }
        b.finish()
    }

    fn config_of(ranks: Vec<RankProfile>) -> ConfigProfile {
        let mut cp = ConfigProfile::new(MeasurementConfig::ranks(ranks.len() as u32), 0, meta());
        cp.ranks = ranks;
        cp
    }

    #[test]
    fn clean_profile_needs_no_repair() {
        let mut cp = config_of(vec![healthy_rank(0, 2, 3), healthy_rank(1, 2, 3)]);
        let original = cp.clone();
        let report = repair_config(&mut cp);
        assert!(report.is_clean(), "{report}");
        assert_eq!(cp, original);
    }

    #[test]
    fn reconstructs_missing_epoch_marks_from_steps() {
        let mut r = healthy_rank(0, 2, 3);
        let expected: Vec<_> = r.epoch_marks.clone();
        r.epoch_marks.clear();
        let mut cp = config_of(vec![r]);
        let report = repair_config(&mut cp);
        assert_eq!(report.counts.marks_reconstructed, 2);
        let rebuilt = &cp.ranks[0].epoch_marks;
        assert_eq!(rebuilt.len(), 2);
        // Reconstruction is a (tight) sub-span of the true epoch span.
        for (got, want) in rebuilt.iter().zip(&expected) {
            assert_eq!(got.epoch, want.epoch);
            assert!(got.start_ns >= want.start_ns);
            assert!(got.end_ns <= want.end_ns);
        }
        // The repaired rank passes validation again.
        assert!(validate_rank(&cp.ranks[0]).is_empty());
    }

    #[test]
    fn reorders_and_renumbers_shuffled_duplicated_steps() {
        let mut r = healthy_rank(0, 1, 4);
        // Shuffle the marks and collide two step indices.
        r.step_marks.swap(0, 3);
        r.step_marks.swap(1, 2);
        let colliding = r.step_marks[2].step;
        r.step_marks[1].step = colliding;
        let mut cp = config_of(vec![r]);
        let report = repair_config(&mut cp);
        assert!(report.counts.ranks_reordered >= 1);
        assert!(report.counts.steps_renumbered >= 1);
        let marks = &cp.ranks[0].step_marks;
        assert!(marks.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        let steps: Vec<u32> = marks.iter().map(|m| m.step).collect();
        assert_eq!(steps, vec![0, 1, 2, 3]);
    }

    #[test]
    fn reconstructs_dropped_step_marks_from_gaps() {
        let mut r = healthy_rank(0, 1, 5);
        r.step_marks.remove(2);
        let mut cp = config_of(vec![r]);
        let report = repair_config(&mut cp);
        assert_eq!(report.counts.marks_reconstructed, 1);
        let marks = &cp.ranks[0].step_marks;
        assert_eq!(marks.len(), 5);
        let steps: Vec<u32> = marks.iter().map(|m| m.step).collect();
        assert_eq!(steps, vec![0, 1, 2, 3, 4]);
        // The synthesized mark spans exactly the hole the drop left.
        assert_eq!(marks[2].start_ns, 2_000);
        assert_eq!(marks[2].end_ns, 3_000);
        assert!(validate_rank(&cp.ranks[0]).is_empty());
    }

    #[test]
    fn small_interstep_gaps_are_left_alone() {
        // Natural gaps (partially overlapped async communication) are well
        // under a step's width and must not grow synthetic marks.
        let mut b = TraceBuilder::new(0);
        b.begin_epoch(0);
        for s in 0..4 {
            b.begin_step(0, s, StepPhase::Training);
            b.emit("k", ApiDomain::CudaKernel, 1_000);
            b.end_step();
            b.advance(200);
        }
        b.end_epoch();
        let mut cp = config_of(vec![b.finish()]);
        let report = repair_config(&mut cp);
        assert_eq!(report.counts.marks_reconstructed, 0);
        assert_eq!(cp.ranks[0].step_marks.len(), 4);
    }

    #[test]
    fn removes_exact_duplicates() {
        let mut r = healthy_rank(0, 1, 3);
        let dup = r.step_marks[1];
        r.step_marks.push(dup);
        let mut cp = config_of(vec![r]);
        let report = repair_config(&mut cp);
        assert_eq!(report.counts.duplicate_steps_removed, 1);
        assert_eq!(cp.ranks[0].step_marks.len(), 3);
    }

    #[test]
    fn fixes_inverted_marks() {
        let mut r = healthy_rank(0, 1, 2);
        let m = &mut r.step_marks[0];
        std::mem::swap(&mut m.start_ns, &mut m.end_ns);
        let e = &mut r.epoch_marks[0];
        std::mem::swap(&mut e.start_ns, &mut e.end_ns);
        let mut cp = config_of(vec![r]);
        let report = repair_config(&mut cp);
        assert_eq!(report.counts.inverted_marks_fixed, 2);
        assert!(cp.ranks[0]
            .step_marks
            .iter()
            .all(|m| m.end_ns >= m.start_ns));
        assert!(cp.ranks[0]
            .epoch_marks
            .iter()
            .all(|m| m.end_ns >= m.start_ns));
    }

    #[test]
    fn clamps_zero_durations() {
        let mut r = healthy_rank(0, 1, 2);
        r.events[0].duration_ns = 0;
        let mut cp = config_of(vec![r]);
        let report = repair_config(&mut cp);
        assert_eq!(report.counts.durations_clamped, 1);
        assert!(cp.ranks[0].events.iter().all(|e| e.duration_ns > 0));
    }

    #[test]
    fn quarantines_empty_rank_but_keeps_siblings() {
        let mut cp = config_of(vec![
            healthy_rank(0, 2, 3),
            RankProfile::new(1),
            healthy_rank(2, 2, 3),
        ]);
        let report = repair_config(&mut cp);
        assert_eq!(report.counts.ranks_quarantined, 1);
        assert_eq!(cp.ranks.len(), 2);
        assert!(cp.ranks.iter().all(|r| r.rank != 1));
        let entry = report.ranks.iter().find(|e| e.rank == 1).unwrap();
        assert!(entry.actions.contains(&RepairAction::Quarantined {
            reason: QuarantineReason::NoEvents
        }));
    }

    #[test]
    fn quarantines_markless_rank_among_marked_siblings() {
        let mut bare = healthy_rank(1, 2, 3);
        bare.step_marks.clear();
        bare.epoch_marks.clear();
        let mut cp = config_of(vec![healthy_rank(0, 2, 3), bare]);
        let report = repair_config(&mut cp);
        assert_eq!(report.counts.ranks_quarantined, 1);
        assert_eq!(cp.ranks.len(), 1);
    }

    #[test]
    fn quarantines_straggler_rank() {
        let mut cp = config_of(vec![
            healthy_rank(0, 2, 3),
            healthy_rank(1, 2, 3),
            paced_rank(2, 2, 3, 3_000),
            healthy_rank(3, 2, 3),
        ]);
        let report = repair_config(&mut cp);
        assert_eq!(report.counts.ranks_quarantined, 1);
        assert_eq!(report.counts.stragglers_quarantined, 1);
        assert_eq!(cp.ranks.len(), 3);
        assert!(cp.ranks.iter().all(|r| r.rank != 2));
        let entry = report.ranks.iter().find(|e| e.rank == 2).unwrap();
        assert!(entry.actions.contains(&RepairAction::Quarantined {
            reason: QuarantineReason::Straggler
        }));
    }

    #[test]
    fn quarantines_straggler_in_a_pair() {
        // With only two ranks a median vote cannot outvote the straggler —
        // the ratio test against the fastest sibling still catches it.
        let mut cp = config_of(vec![healthy_rank(0, 2, 3), paced_rank(1, 2, 3, 3_000)]);
        let report = repair_config(&mut cp);
        assert_eq!(report.counts.stragglers_quarantined, 1);
        assert_eq!(cp.ranks.len(), 1);
        assert_eq!(cp.ranks[0].rank, 0);
    }

    #[test]
    fn uniformly_slow_ranks_are_not_stragglers() {
        // Every rank equally slow is just a slow run: nothing to quarantine.
        let mut cp = config_of(vec![
            paced_rank(0, 2, 3, 3_000),
            paced_rank(1, 2, 3, 3_000),
            paced_rank(2, 2, 3, 3_000),
        ]);
        let report = repair_config(&mut cp);
        assert_eq!(report.counts.stragglers_quarantined, 0);
        assert_eq!(cp.ranks.len(), 3);
    }

    #[test]
    fn lone_rank_is_never_a_straggler() {
        let mut cp = config_of(vec![paced_rank(0, 2, 3, 9_000)]);
        let report = repair_config(&mut cp);
        assert_eq!(report.counts.stragglers_quarantined, 0);
        assert_eq!(cp.ranks.len(), 1);
    }

    #[test]
    fn markless_ranks_survive_when_no_rank_has_marks() {
        // A legitimately mark-free profile (events only) must not be wiped.
        let mut a = RankProfile::new(0);
        a.events
            .push(crate::event::Event::new("k", ApiDomain::CudaKernel, 0, 100));
        let mut b = RankProfile::new(1);
        b.events
            .push(crate::event::Event::new("k", ApiDomain::CudaKernel, 0, 120));
        let mut cp = config_of(vec![a, b]);
        let report = repair_config(&mut cp);
        assert_eq!(report.counts.ranks_quarantined, 0);
        assert_eq!(cp.ranks.len(), 2);
    }

    #[test]
    fn drops_configs_with_no_surviving_rank() {
        let mut exp = ExperimentProfiles::new();
        exp.push(config_of(vec![healthy_rank(0, 2, 3)]));
        exp.push(config_of(vec![RankProfile::new(0), RankProfile::new(1)]));
        let report = repair_experiment(&mut exp);
        assert_eq!(report.counts.configs_dropped, 1);
        assert_eq!(report.counts.ranks_quarantined, 2);
        assert_eq!(exp.len(), 1);
    }

    #[test]
    fn report_displays_and_serializes() {
        let mut cp = config_of(vec![healthy_rank(0, 2, 3), RankProfile::new(1)]);
        let report = repair_config(&mut cp);
        let text = report.to_string();
        assert!(text.contains("quarantined"), "{text}");
        let json = serde_json::to_string(&report).unwrap();
        let back: RepairReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn repair_then_validate_is_clean_for_shuffled_input() {
        let mut r = healthy_rank(0, 2, 4);
        r.step_marks.reverse();
        r.epoch_marks.clear();
        let mut cp = config_of(vec![r]);
        repair_config(&mut cp);
        assert!(
            validate_config(&cp).is_empty(),
            "{:?}",
            validate_config(&cp)
        );
    }
}
