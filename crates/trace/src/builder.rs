//! An NVTX-style trace builder.
//!
//! The simulator (and any other producer) uses this to emit a well-formed
//! [`RankProfile`]: a monotone clock, push/pop step and epoch regions, and
//! event emission that records timestamps automatically.

use crate::domain::ApiDomain;
use crate::event::Event;
use crate::marks::{EpochMark, StepMark, StepPhase};
use crate::profile::RankProfile;
use std::sync::Arc;

/// Builds one rank's profile with an internal monotone clock (nanoseconds).
#[derive(Debug)]
pub struct TraceBuilder {
    profile: RankProfile,
    clock_ns: u64,
    open_epoch: Option<(u32, u64)>,
    open_step: Option<(u32, u32, StepPhase, u64)>,
    /// Open NVTX region names, innermost last.
    region_stack: Vec<String>,
    /// Interned joined path for the current stack (rebuilt on change).
    current_path: Option<Arc<str>>,
}

impl TraceBuilder {
    pub fn new(rank: u32) -> Self {
        TraceBuilder {
            profile: RankProfile::new(rank),
            clock_ns: 0,
            open_epoch: None,
            open_step: None,
            region_stack: Vec::new(),
            current_path: None,
        }
    }

    /// Opens an NVTX region; subsequently emitted events carry the joined
    /// region path (`outer/inner`) as their call path.
    pub fn push_region(&mut self, name: impl Into<String>) {
        self.region_stack.push(name.into());
        self.current_path = Some(Arc::from(self.region_stack.join("/")));
    }

    /// Closes the innermost NVTX region.
    pub fn pop_region(&mut self) {
        self.region_stack.pop();
        self.current_path = if self.region_stack.is_empty() {
            None
        } else {
            Some(Arc::from(self.region_stack.join("/")))
        };
    }

    fn stamp(&self, mut e: Event) -> Event {
        if let Some(path) = &self.current_path {
            e.call_path = Some(path.clone());
        }
        e
    }

    pub fn now_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Advances the clock without emitting an event (idle / untracked time).
    pub fn advance(&mut self, ns: u64) {
        self.clock_ns += ns;
    }

    /// Emits an event lasting `duration_ns`, advancing the clock past it.
    pub fn emit(&mut self, name: impl Into<Arc<str>>, domain: ApiDomain, duration_ns: u64) {
        let e = self.stamp(Event::new(name, domain, self.clock_ns, duration_ns));
        self.clock_ns += duration_ns;
        self.profile.events.push(e);
    }

    /// Emits an event that also carries a byte payload.
    pub fn emit_bytes(
        &mut self,
        name: impl Into<Arc<str>>,
        domain: ApiDomain,
        duration_ns: u64,
        bytes: u64,
    ) {
        let e = self.stamp(Event::new(name, domain, self.clock_ns, duration_ns).with_bytes(bytes));
        self.clock_ns += duration_ns;
        self.profile.events.push(e);
    }

    /// Emits an aggregated row: `visits` executions of one kernel totalling
    /// `total_duration_ns` (and optionally `bytes`), advancing the clock past
    /// the total.
    pub fn emit_aggregated(
        &mut self,
        name: impl Into<Arc<str>>,
        domain: ApiDomain,
        total_duration_ns: u64,
        visits: u64,
        bytes: Option<u64>,
    ) {
        let mut e = self
            .stamp(Event::new(name, domain, self.clock_ns, total_duration_ns).with_visits(visits));
        e.bytes = bytes;
        self.clock_ns += total_duration_ns;
        self.profile.events.push(e);
    }

    /// Emits an *asynchronous* event at an explicit timestamp without moving
    /// the clock — models kernels that "fall in between two steps"
    /// (paper §2.2 step 1).
    pub fn emit_async(
        &mut self,
        name: impl Into<Arc<str>>,
        domain: ApiDomain,
        start_ns: u64,
        duration_ns: u64,
    ) {
        let e = self.stamp(Event::new(name, domain, start_ns, duration_ns));
        self.profile.events.push(e);
    }

    pub fn begin_epoch(&mut self, epoch: u32) {
        assert!(self.open_epoch.is_none(), "epoch already open");
        self.open_epoch = Some((epoch, self.clock_ns));
    }

    pub fn end_epoch(&mut self) {
        // analyze:allow(panic-on-data-path): builder-misuse invariant like the begin_* asserts, not data-dependent
        let (epoch, start) = self.open_epoch.take().expect("no open epoch");
        self.profile
            .epoch_marks
            .push(EpochMark::new(epoch, start, self.clock_ns));
    }

    pub fn begin_step(&mut self, epoch: u32, step: u32, phase: StepPhase) {
        assert!(self.open_step.is_none(), "step already open");
        self.open_step = Some((epoch, step, phase, self.clock_ns));
    }

    pub fn end_step(&mut self) {
        // analyze:allow(panic-on-data-path): builder-misuse invariant like the begin_* asserts, not data-dependent
        let (epoch, step, phase, start) = self.open_step.take().expect("no open step");
        self.profile
            .step_marks
            .push(StepMark::new(epoch, step, phase, start, self.clock_ns));
    }

    /// Finishes the build. Panics when an epoch or step is still open —
    /// a malformed trace should never escape the producer.
    pub fn finish(self) -> RankProfile {
        assert!(self.open_epoch.is_none(), "unclosed epoch at finish");
        assert!(self.open_step.is_none(), "unclosed step at finish");
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_marked_trace() {
        let mut b = TraceBuilder::new(3);
        b.begin_epoch(0);
        b.begin_step(0, 0, StepPhase::Training);
        b.emit("EigenMetaKernel", ApiDomain::CudaKernel, 1_000);
        b.emit_bytes("CUDA memcpy HtoD", ApiDomain::MemCpy, 500, 4096);
        b.end_step();
        b.advance(100);
        b.begin_step(0, 1, StepPhase::Training);
        b.emit("EigenMetaKernel", ApiDomain::CudaKernel, 1_100);
        b.end_step();
        b.end_epoch();
        let p = b.finish();

        assert_eq!(p.rank, 3);
        assert_eq!(p.events.len(), 3);
        assert_eq!(p.step_marks.len(), 2);
        assert_eq!(p.epoch_marks.len(), 1);
        // Steps tile the timeline in order and don't overlap.
        assert_eq!(p.step_marks[0].start_ns, 0);
        assert_eq!(p.step_marks[0].end_ns, 1_500);
        assert_eq!(p.step_marks[1].start_ns, 1_600);
        assert_eq!(p.epoch_marks[0].end_ns, 2_700);
        // Events fall inside their steps.
        assert!(p.step_marks[0].contains(p.events[0].start_ns));
        assert!(p.step_marks[1].contains(p.events[2].start_ns));
    }

    #[test]
    fn async_events_do_not_advance_clock() {
        let mut b = TraceBuilder::new(0);
        b.emit("k", ApiDomain::CudaKernel, 100);
        let t = b.now_ns();
        b.emit_async("nccl_bg", ApiDomain::Nccl, 50, 500);
        assert_eq!(b.now_ns(), t);
        let p = b.finish();
        assert_eq!(p.events.len(), 2);
    }

    #[test]
    #[should_panic(expected = "unclosed epoch")]
    fn unclosed_epoch_panics() {
        let mut b = TraceBuilder::new(0);
        b.begin_epoch(0);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "step already open")]
    fn nested_steps_panic() {
        let mut b = TraceBuilder::new(0);
        b.begin_step(0, 0, StepPhase::Training);
        b.begin_step(0, 1, StepPhase::Training);
    }

    #[test]
    fn aggregated_rows_carry_visits() {
        let mut b = TraceBuilder::new(0);
        b.emit_aggregated("relu_kernel", ApiDomain::CudaKernel, 3_000, 48, None);
        b.emit_aggregated("CUDA memcpy HtoD", ApiDomain::MemCpy, 1_000, 2, Some(8192));
        let p = b.finish();
        assert_eq!(p.events[0].visits, 48);
        assert_eq!(p.events[0].duration_ns, 3_000);
        assert_eq!(p.events[1].bytes, Some(8192));
        assert_eq!(p.events[1].start_ns, 3_000);
    }

    #[test]
    fn bytes_payload_recorded() {
        let mut b = TraceBuilder::new(0);
        b.emit_bytes("MPI_Allreduce", ApiDomain::Mpi, 10, 1 << 20);
        let p = b.finish();
        assert_eq!(p.events[0].bytes, Some(1 << 20));
    }
}
