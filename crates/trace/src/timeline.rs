//! Per-rank activity timelines: where does the time of a distributed
//! training run actually go?
//!
//! The aggregation layer (`extradeep-agg`) collapses each rank's event
//! stream into per-kernel totals before modeling; this module keeps the
//! *timeline* structure instead and derives the classic distributed-training
//! health metrics from it:
//!
//! - a compute / communication / memory / idle breakdown per rank (interval
//!   union arithmetic, so overlapping events are not double-counted),
//! - load-imbalance statistics per training step and per kernel
//!   (max/median skew with straggler attribution to a rank id),
//! - the communication/computation overlap fraction (how much collective
//!   time hides under compute — the quantity ASP-style execution maximizes),
//! - an estimated cross-rank critical path through the collective
//!   synchronization points at step boundaries, with per-segment
//!   attribution to the rank that set the pace.
//!
//! `core::inspect` builds the multi-scale observatory on top of this;
//! the functions here analyze one [`ConfigProfile`] at a time.

use crate::domain::KernelCategory;
use crate::event::Event;
use crate::marks::{StepMark, StepPhase};
use crate::profile::{ConfigProfile, RankProfile};
use crate::units::ns_to_secs;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Coarse activity class of an event on the timeline. The partition matches
/// the application-level categories the aggregation models (`AppCategory`):
/// collectives are communication, memcpy/memset are memory operations, and
/// everything else — kernels, library calls, I/O, host bookkeeping — counts
/// as computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivityClass {
    Compute,
    Communication,
    Memory,
}

impl ActivityClass {
    pub fn of(event: &Event) -> ActivityClass {
        match event.category() {
            KernelCategory::Communication => ActivityClass::Communication,
            KernelCategory::MemoryOperation => ActivityClass::Memory,
            _ => ActivityClass::Compute,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            ActivityClass::Compute => "compute",
            ActivityClass::Communication => "communication",
            ActivityClass::Memory => "memory",
        }
    }
}

/// Sorts half-open `[start, end)` intervals and merges overlaps in place.
fn merge_intervals(intervals: &mut Vec<(u64, u64)>) {
    intervals.retain(|&(s, e)| e > s);
    intervals.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for &(s, e) in intervals.iter() {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    *intervals = merged;
}

/// Total length of a *merged* interval list, in nanoseconds.
fn total_ns(merged: &[(u64, u64)]) -> u64 {
    merged.iter().map(|&(s, e)| e - s).sum()
}

/// Length of the intersection of two merged interval lists.
fn intersection_ns(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Median of an unsorted value list; 0 when empty.
fn median_of(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        0.5 * (values[mid - 1] + values[mid])
    }
}

/// The activity breakdown of one rank, in seconds. The per-class times are
/// interval unions, so `compute + comm + memory` can exceed `busy` when
/// classes overlap (that is exactly what `overlap` measures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankActivity {
    pub rank: u32,
    /// Wall-clock span the profile covers on this rank.
    pub span_seconds: f64,
    pub compute_seconds: f64,
    pub comm_seconds: f64,
    pub memory_seconds: f64,
    /// Union of all event intervals.
    pub busy_seconds: f64,
    /// `span - busy`: time no recorded event covers.
    pub idle_seconds: f64,
    /// Communication time hidden under compute or memory work:
    /// `|comm ∩ (compute ∪ memory)|`.
    pub overlap_seconds: f64,
    pub events: usize,
}

/// Imbalance statistics of one matched step window across ranks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepStat {
    pub epoch: u32,
    pub step: u32,
    pub phase: StepPhase,
    /// Ranks that recorded this step.
    pub ranks: usize,
    pub median_seconds: f64,
    pub max_seconds: f64,
    /// `max / median` — 1.0 is perfectly balanced.
    pub skew: f64,
    pub slowest_rank: u32,
    /// `max - median`: the wait the slowest rank imposes at the next
    /// synchronization point.
    pub excess_seconds: f64,
}

/// Per-kernel imbalance across ranks (totals per rank, then max vs median).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelImbalance {
    pub name: String,
    pub median_seconds: f64,
    pub max_seconds: f64,
    pub skew: f64,
    pub slowest_rank: u32,
    pub excess_seconds: f64,
}

/// What a critical-path segment spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Program start up to the first step mark.
    Init,
    /// One step window: from its step-mark start to the next step's start
    /// (the last window runs to the end of the rank span, absorbing the
    /// epoch tail).
    Step {
        epoch: u32,
        step: u32,
        phase: StepPhase,
    },
    /// A stepless profile: the whole span as one segment.
    FullSpan,
}

impl SegmentKind {
    pub fn label(&self) -> String {
        match *self {
            SegmentKind::Init => "init".to_string(),
            SegmentKind::Step { epoch, step, phase } => {
                let p = match phase {
                    StepPhase::Training => "t",
                    StepPhase::Validation => "v",
                };
                format!("e{epoch}s{step}{p}")
            }
            SegmentKind::FullSpan => "span".to_string(),
        }
    }
}

/// One segment of the estimated cross-rank critical path: between two
/// consecutive synchronization points, the slowest rank sets the pace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalSegment {
    pub kind: SegmentKind,
    /// Max-across-ranks duration of this segment.
    pub seconds: f64,
    /// The rank that was slowest here.
    pub rank: u32,
    /// Segment bounds on the slowest rank's own clock (for trace overlays).
    pub start_ns: u64,
    pub end_ns: u64,
}

/// Total step-window excess one rank accumulated over the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankExcess {
    pub rank: u32,
    /// Sum over steps of `(this rank's duration - median duration)`.
    pub excess_seconds: f64,
    /// Number of steps where this rank was the slowest.
    pub slowest_steps: usize,
}

/// The full per-configuration timeline analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineAnalysis {
    /// First configuration coordinate (the rank count `x1`).
    pub scale: f64,
    pub repetition: u32,
    pub ranks: Vec<RankActivity>,
    /// Matched step windows, in (epoch, step, phase) order.
    pub steps: Vec<StepStat>,
    /// Per-kernel imbalance, worst first by excess.
    pub kernels: Vec<KernelImbalance>,
    pub segments: Vec<CriticalSegment>,
    /// Sum of max-across-ranks segment durations. Always at least the
    /// slowest rank's span; the gap between the two is the imbalance tax.
    pub critical_path_seconds: f64,
    pub max_span_seconds: f64,
    pub median_span_seconds: f64,
    /// Fractions of total recorded span across ranks.
    pub compute_fraction: f64,
    pub comm_fraction: f64,
    pub memory_fraction: f64,
    pub idle_fraction: f64,
    /// Hidden fraction of communication: `Σ overlap / Σ comm` (0 without
    /// communication).
    pub overlap_fraction: f64,
    /// Median per-step skew (robust "how imbalanced is a typical step").
    pub step_skew: f64,
    pub max_step_skew: f64,
    /// Per-rank accumulated step excess, worst first.
    pub rank_excess: Vec<RankExcess>,
}

impl TimelineAnalysis {
    /// The rank that contributed the most step-window excess — the
    /// straggler candidate.
    pub fn top_imbalance_rank(&self) -> Option<u32> {
        self.rank_excess.first().map(|r| r.rank)
    }

    /// `critical_path / median_span`: >1 means cross-rank imbalance
    /// lengthens the run beyond what a typical rank's own timeline shows.
    pub fn critical_path_inflation(&self) -> f64 {
        if self.median_span_seconds > 0.0 {
            self.critical_path_seconds / self.median_span_seconds
        } else {
            0.0
        }
    }
}

/// Merged per-class interval sets of one rank.
struct RankIntervals {
    compute: Vec<(u64, u64)>,
    comm: Vec<(u64, u64)>,
    memory: Vec<(u64, u64)>,
}

fn rank_intervals(rank: &RankProfile) -> RankIntervals {
    let mut compute = Vec::new();
    let mut comm = Vec::new();
    let mut memory = Vec::new();
    for e in &rank.events {
        let iv = (e.start_ns, e.end_ns());
        match ActivityClass::of(e) {
            ActivityClass::Compute => compute.push(iv),
            ActivityClass::Communication => comm.push(iv),
            ActivityClass::Memory => memory.push(iv),
        }
    }
    merge_intervals(&mut compute);
    merge_intervals(&mut comm);
    merge_intervals(&mut memory);
    RankIntervals {
        compute,
        comm,
        memory,
    }
}

/// Computes the activity breakdown of one rank profile.
pub fn analyze_rank(rank: &RankProfile) -> RankActivity {
    let iv = rank_intervals(rank);
    let mut busy: Vec<(u64, u64)> = Vec::new();
    busy.extend_from_slice(&iv.compute);
    busy.extend_from_slice(&iv.comm);
    busy.extend_from_slice(&iv.memory);
    merge_intervals(&mut busy);
    let mut not_comm: Vec<(u64, u64)> = Vec::new();
    not_comm.extend_from_slice(&iv.compute);
    not_comm.extend_from_slice(&iv.memory);
    merge_intervals(&mut not_comm);

    let span_ns = rank.span_ns();
    let busy_ns = total_ns(&busy);
    RankActivity {
        rank: rank.rank,
        span_seconds: ns_to_secs(span_ns),
        compute_seconds: ns_to_secs(total_ns(&iv.compute)),
        comm_seconds: ns_to_secs(total_ns(&iv.comm)),
        memory_seconds: ns_to_secs(total_ns(&iv.memory)),
        busy_seconds: ns_to_secs(busy_ns),
        idle_seconds: ns_to_secs(span_ns.saturating_sub(busy_ns)),
        overlap_seconds: ns_to_secs(intersection_ns(&iv.comm, &not_comm)),
        events: rank.events.len(),
    }
}

type StepKey = (u32, u32, StepPhase);

fn step_key(m: &StepMark) -> StepKey {
    (m.epoch, m.step, m.phase)
}

/// The critical-path segment windows of one rank: `(kind, start, end)` with
/// step windows running from a step's start to the next step's start (the
/// last one to the rank span), so the segments tile `[0, span]`.
fn rank_segments(rank: &RankProfile) -> Vec<(SegmentKind, u64, u64)> {
    let span = rank.span_ns();
    let mut marks: Vec<&StepMark> = rank.step_marks.iter().collect();
    marks.sort_by_key(|m| m.start_ns);
    if marks.is_empty() {
        return vec![(SegmentKind::FullSpan, 0, span)];
    }
    let mut segments = Vec::with_capacity(marks.len() + 1);
    if marks[0].start_ns > 0 {
        segments.push((SegmentKind::Init, 0, marks[0].start_ns));
    }
    for (i, m) in marks.iter().enumerate() {
        let end = marks
            .get(i + 1)
            .map(|n| n.start_ns)
            .unwrap_or(span)
            .max(m.start_ns);
        segments.push((
            SegmentKind::Step {
                epoch: m.epoch,
                step: m.step,
                phase: m.phase,
            },
            m.start_ns,
            end,
        ));
    }
    segments
}

/// Analyzes one configuration profile: per-rank breakdowns, step and kernel
/// imbalance, and the cross-rank critical path.
pub fn analyze_config(profile: &ConfigProfile) -> TimelineAnalysis {
    let scale = profile
        .config
        .coordinate()
        .first()
        .copied()
        .unwrap_or(profile.num_ranks() as f64);

    let ranks: Vec<RankActivity> = profile.ranks.iter().map(analyze_rank).collect();

    // --- Step windows matched across ranks. ---
    let mut windows: BTreeMap<StepKey, Vec<(u32, u64)>> = BTreeMap::new();
    for rank in &profile.ranks {
        for m in &rank.step_marks {
            windows
                .entry(step_key(m))
                .or_default()
                .push((rank.rank, m.duration_ns()));
        }
    }
    let mut steps: Vec<StepStat> = Vec::with_capacity(windows.len());
    let mut excess: BTreeMap<u32, RankExcess> = profile
        .ranks
        .iter()
        .map(|r| {
            (
                r.rank,
                RankExcess {
                    rank: r.rank,
                    excess_seconds: 0.0,
                    slowest_steps: 0,
                },
            )
        })
        .collect();
    for ((epoch, step, phase), durs) in &windows {
        let mut secs: Vec<f64> = durs.iter().map(|&(_, d)| ns_to_secs(d)).collect();
        let median = median_of(&mut secs);
        let (mut slowest_rank, mut max) = (0u32, f64::NEG_INFINITY);
        for &(rank, d) in durs {
            let s = ns_to_secs(d);
            if s > max {
                max = s;
                slowest_rank = rank;
            }
            if let Some(e) = excess.get_mut(&rank) {
                e.excess_seconds += s - median;
            }
        }
        if let Some(e) = excess.get_mut(&slowest_rank) {
            e.slowest_steps += 1;
        }
        steps.push(StepStat {
            epoch: *epoch,
            step: *step,
            phase: *phase,
            ranks: durs.len(),
            median_seconds: median,
            max_seconds: max,
            skew: if median > 0.0 { max / median } else { 1.0 },
            slowest_rank,
            excess_seconds: (max - median).max(0.0),
        });
    }
    let mut rank_excess: Vec<RankExcess> = excess.into_values().collect();
    rank_excess.sort_by(|a, b| {
        b.excess_seconds
            .total_cmp(&a.excess_seconds)
            .then(a.rank.cmp(&b.rank))
    });

    // --- Per-kernel imbalance: per-rank total seconds. ---
    let mut kernel_totals: BTreeMap<String, BTreeMap<u32, f64>> = BTreeMap::new();
    for rank in &profile.ranks {
        for e in &rank.events {
            *kernel_totals
                .entry(e.name.to_string())
                .or_default()
                .entry(rank.rank)
                .or_insert(0.0) += ns_to_secs(e.duration_ns);
        }
    }
    let mut kernels: Vec<KernelImbalance> = kernel_totals
        .into_iter()
        .filter_map(|(name, per_rank)| {
            let mut vals: Vec<f64> = per_rank.values().copied().collect();
            // Ranks that never ran this kernel contribute zero totals.
            vals.resize(profile.num_ranks().max(vals.len()), 0.0);
            let median = median_of(&mut vals);
            if median <= 0.0 {
                return None;
            }
            let (mut slowest_rank, mut max) = (0u32, f64::NEG_INFINITY);
            for (&rank, &s) in &per_rank {
                if s > max {
                    max = s;
                    slowest_rank = rank;
                }
            }
            Some(KernelImbalance {
                name,
                median_seconds: median,
                max_seconds: max,
                skew: max / median,
                slowest_rank,
                excess_seconds: (max - median).max(0.0),
            })
        })
        .collect();
    kernels.sort_by(|a, b| {
        b.excess_seconds
            .total_cmp(&a.excess_seconds)
            .then_with(|| a.name.cmp(&b.name))
    });

    // --- Cross-rank critical path through step-boundary sync points. ---
    let mut segment_windows: BTreeMap<(u8, StepKey), Vec<(u32, u64, u64)>> = BTreeMap::new();
    const INIT_KEY: (u8, StepKey) = (0, (0, 0, StepPhase::Training));
    const SPAN_KEY: (u8, StepKey) = (2, (0, 0, StepPhase::Training));
    for rank in &profile.ranks {
        for (kind, start, end) in rank_segments(rank) {
            let key = match kind {
                SegmentKind::Init => INIT_KEY,
                SegmentKind::Step { epoch, step, phase } => (1, (epoch, step, phase)),
                SegmentKind::FullSpan => SPAN_KEY,
            };
            segment_windows
                .entry(key)
                .or_default()
                .push((rank.rank, start, end));
        }
    }
    let mut segments: Vec<CriticalSegment> = segment_windows
        .into_iter()
        .filter_map(|((tag, key), spans)| {
            let (rank, start, end) = spans
                .iter()
                .copied()
                .max_by(|a, b| (a.2 - a.1).cmp(&(b.2 - b.1)).then(b.0.cmp(&a.0)))?;
            let kind = match tag {
                0 => SegmentKind::Init,
                2 => SegmentKind::FullSpan,
                _ => SegmentKind::Step {
                    epoch: key.0,
                    step: key.1,
                    phase: key.2,
                },
            };
            Some(CriticalSegment {
                kind,
                seconds: ns_to_secs(end - start),
                rank,
                start_ns: start,
                end_ns: end,
            })
        })
        .collect();
    // Chronological order: by the slowest rank's own start time.
    segments.sort_by_key(|s| s.start_ns);
    let critical_path_seconds: f64 = segments.iter().map(|s| s.seconds).sum();

    // --- Config-level aggregates. ---
    let mut spans: Vec<f64> = ranks.iter().map(|r| r.span_seconds).collect();
    let total_span: f64 = spans.iter().sum();
    let max_span_seconds = spans.iter().copied().fold(0.0, f64::max);
    let median_span_seconds = median_of(&mut spans);
    let total_comm: f64 = ranks.iter().map(|r| r.comm_seconds).sum();
    let total_overlap: f64 = ranks.iter().map(|r| r.overlap_seconds).sum();
    let frac = |total: f64| {
        if total_span > 0.0 {
            total / total_span
        } else {
            0.0
        }
    };
    let mut skews: Vec<f64> = steps.iter().map(|s| s.skew).collect();
    let max_step_skew = skews.iter().copied().fold(0.0, f64::max);
    let step_skew = median_of(&mut skews);

    TimelineAnalysis {
        scale,
        repetition: profile.repetition,
        steps,
        kernels,
        critical_path_seconds,
        segments,
        max_span_seconds,
        median_span_seconds,
        compute_fraction: frac(ranks.iter().map(|r| r.compute_seconds).sum()),
        comm_fraction: frac(total_comm),
        memory_fraction: frac(ranks.iter().map(|r| r.memory_seconds).sum()),
        idle_fraction: frac(ranks.iter().map(|r| r.idle_seconds).sum()),
        overlap_fraction: if total_comm > 0.0 {
            total_overlap / total_comm
        } else {
            0.0
        },
        step_skew,
        max_step_skew,
        rank_excess,
        ranks,
    }
}

/// A step window skew must exceed this before the overlay flags it.
pub const SKEW_NOTE_THRESHOLD: f64 = 1.2;

/// An instant marker for the Chrome-trace overlay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstantNote {
    pub rank: u32,
    pub t_ns: u64,
    pub name: String,
}

/// One end of a flow arrow for the Chrome-trace overlay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowPoint {
    pub id: u64,
    pub rank: u32,
    pub t_ns: u64,
    /// `true` for the flow start ("s"), `false` for the finish ("f").
    pub begin: bool,
}

/// Overlay annotations derived from a timeline analysis: instant events on
/// straggler step windows plus flow arrows chaining the critical path.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimelineAnnotations {
    pub instants: Vec<InstantNote>,
    pub flows: Vec<FlowPoint>,
}

/// Builds the Chrome-trace overlay annotations for one analyzed profile.
pub fn annotations(profile: &ConfigProfile, analysis: &TimelineAnalysis) -> TimelineAnnotations {
    let mut out = TimelineAnnotations::default();
    for s in &analysis.steps {
        if s.skew < SKEW_NOTE_THRESHOLD {
            continue;
        }
        let mark = profile
            .ranks
            .iter()
            .find(|r| r.rank == s.slowest_rank)
            .and_then(|r| {
                r.step_marks
                    .iter()
                    .find(|m| step_key(m) == (s.epoch, s.step, s.phase))
            });
        if let Some(m) = mark {
            out.instants.push(InstantNote {
                rank: s.slowest_rank,
                t_ns: m.start_ns,
                name: format!(
                    "straggler r{} e{}s{} ({:.2}x)",
                    s.slowest_rank, s.epoch, s.step, s.skew
                ),
            });
        }
    }
    for (id, pair) in analysis.segments.windows(2).enumerate() {
        let (from, to) = (&pair[0], &pair[1]);
        out.flows.push(FlowPoint {
            id: id as u64,
            rank: from.rank,
            // End strictly inside the segment so viewers bind the arrow to it.
            t_ns: from.end_ns.saturating_sub(1).max(from.start_ns),
            begin: true,
        });
        out.flows.push(FlowPoint {
            id: id as u64,
            rank: to.rank,
            t_ns: to.start_ns,
            begin: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::config::{MeasurementConfig, TrainingMeta};
    use crate::domain::ApiDomain;

    fn meta() -> TrainingMeta {
        TrainingMeta {
            batch_size: 32,
            train_samples: 320,
            val_samples: 0,
            data_parallel: 2,
            model_parallel: 1,
            cores_per_rank: 1,
        }
    }

    /// One rank: 100 compute, 50 comm overlapping the last 30 of compute,
    /// then 20 idle, then 40 memory.
    fn overlap_rank(rank: u32) -> RankProfile {
        let mut b = TraceBuilder::new(rank);
        b.begin_epoch(0);
        b.begin_step(0, 0, StepPhase::Training);
        b.emit("gemm", ApiDomain::CudaKernel, 100);
        b.emit_async("ncclAllReduce", ApiDomain::Nccl, 70, 50);
        // The async allreduce does not advance the cursor (still at 100);
        // skip past its tail plus a 20ns gap so [120,140) is truly idle.
        b.advance(40);
        b.emit("CUDA memcpy HtoD", ApiDomain::MemCpy, 40);
        b.end_step();
        b.end_epoch();
        b.finish()
    }

    #[test]
    fn interval_union_merges_overlaps() {
        let mut v = vec![(10, 20), (15, 30), (40, 50), (50, 60), (5, 6)];
        merge_intervals(&mut v);
        assert_eq!(v, vec![(5, 6), (10, 30), (40, 60)]);
        assert_eq!(total_ns(&v), 1 + 20 + 20);
    }

    #[test]
    fn interval_intersection_counts_shared_time() {
        let a = vec![(0, 10), (20, 30)];
        let b = vec![(5, 25)];
        assert_eq!(intersection_ns(&a, &b), 5 + 5);
        assert_eq!(intersection_ns(&a, &[]), 0);
    }

    #[test]
    fn rank_breakdown_separates_classes_and_overlap() {
        let a = analyze_rank(&overlap_rank(0));
        // Timeline: compute [0,100), comm [70,120) async, idle [120,140),
        // memory [140,180).
        assert!((a.compute_seconds - 100e-9).abs() < 1e-15);
        assert!((a.comm_seconds - 50e-9).abs() < 1e-15);
        assert!((a.memory_seconds - 40e-9).abs() < 1e-15);
        assert!((a.busy_seconds - 160e-9).abs() < 1e-15);
        assert!((a.idle_seconds - 20e-9).abs() < 1e-15);
        // The allreduce hides under compute for [70,100).
        assert!((a.overlap_seconds - 30e-9).abs() < 1e-15);
    }

    /// Three ranks, two steps; rank 1's second step is 3x slower. Three
    /// ranks keep the median at the healthy duration, so skew isolates the
    /// straggler instead of averaging it in.
    fn straggler_profile() -> ConfigProfile {
        let mut cp = ConfigProfile::new(MeasurementConfig::ranks(3), 0, meta());
        for rank in 0..3u32 {
            let mut b = TraceBuilder::new(rank);
            b.begin_epoch(0);
            for step in 0..2u32 {
                b.begin_step(0, step, StepPhase::Training);
                let dur = if rank == 1 && step == 1 { 300 } else { 100 };
                b.emit("gemm", ApiDomain::CudaKernel, dur);
                b.emit("MPI_Allreduce", ApiDomain::Mpi, 10);
                b.end_step();
            }
            b.end_epoch();
            cp.ranks.push(b.finish());
        }
        cp
    }

    #[test]
    fn step_skew_attributes_the_straggler() {
        let analysis = analyze_config(&straggler_profile());
        assert_eq!(analysis.steps.len(), 2);
        let s0 = &analysis.steps[0];
        assert!((s0.skew - 1.0).abs() < 1e-12);
        let s1 = &analysis.steps[1];
        assert_eq!(s1.slowest_rank, 1);
        assert!(s1.skew > 2.0, "skew {}", s1.skew);
        assert_eq!(analysis.top_imbalance_rank(), Some(1));
        assert!(analysis.max_step_skew > 2.0);
        // The straggling kernel is attributed too.
        let gemm = analysis
            .kernels
            .iter()
            .find(|k| k.name == "gemm")
            .expect("gemm imbalance");
        assert_eq!(gemm.slowest_rank, 1);
        assert!(gemm.skew > 1.5);
    }

    #[test]
    fn critical_path_takes_the_slowest_rank_per_segment() {
        let analysis = analyze_config(&straggler_profile());
        // Both ranks: step0 110ns; step1: 110 vs 310. CP = 110 + 310.
        assert!((analysis.critical_path_seconds - 420e-9).abs() < 1e-15);
        assert!(analysis.critical_path_seconds >= analysis.max_span_seconds - 1e-15);
        let last = analysis.segments.last().expect("segments");
        assert_eq!(last.rank, 1);
        assert_eq!(
            last.kind,
            SegmentKind::Step {
                epoch: 0,
                step: 1,
                phase: StepPhase::Training
            }
        );
        // Critical path exceeds what either rank saw alone.
        assert!(analysis.critical_path_inflation() > 1.2);
    }

    #[test]
    fn identical_ranks_have_critical_path_equal_to_span() {
        let mut cp = ConfigProfile::new(MeasurementConfig::ranks(2), 0, meta());
        for rank in 0..2u32 {
            cp.ranks.push(overlap_rank(rank));
        }
        let analysis = analyze_config(&cp);
        assert!(
            (analysis.critical_path_seconds - analysis.max_span_seconds).abs() < 1e-15,
            "cp {} vs span {}",
            analysis.critical_path_seconds,
            analysis.max_span_seconds
        );
        assert!((analysis.step_skew - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stepless_profile_degrades_to_full_span() {
        let mut cp = ConfigProfile::new(MeasurementConfig::ranks(1), 0, meta());
        let mut b = TraceBuilder::new(0);
        b.emit("cudaMalloc", ApiDomain::CudaApi, 500);
        cp.ranks.push(b.finish());
        let analysis = analyze_config(&cp);
        assert_eq!(analysis.steps.len(), 0);
        assert_eq!(analysis.segments.len(), 1);
        assert_eq!(analysis.segments[0].kind, SegmentKind::FullSpan);
        assert!((analysis.critical_path_seconds - 500e-9).abs() < 1e-15);
    }

    #[test]
    fn annotations_flag_straggler_steps_and_chain_segments() {
        let profile = straggler_profile();
        let analysis = analyze_config(&profile);
        let ann = annotations(&profile, &analysis);
        assert_eq!(ann.instants.len(), 1);
        assert_eq!(ann.instants[0].rank, 1);
        assert!(ann.instants[0].name.contains("straggler r1"));
        // Segment transitions: init absent (step starts at 0?) — with the
        // builder the first step starts at t=0, so segments = 2 steps.
        assert_eq!(ann.flows.len(), (analysis.segments.len() - 1) * 2);
        let starts = ann.flows.iter().filter(|f| f.begin).count();
        assert_eq!(starts, analysis.segments.len() - 1);
    }

    #[test]
    fn fractions_are_consistent() {
        let mut cp = ConfigProfile::new(MeasurementConfig::ranks(2), 0, meta());
        for rank in 0..2u32 {
            cp.ranks.push(overlap_rank(rank));
        }
        let a = analyze_config(&cp);
        assert!(a.idle_fraction > 0.0);
        assert!(a.overlap_fraction > 0.5, "overlap {}", a.overlap_fraction);
        // busy + idle = span per rank, so fractions of the union classes
        // cover at most 1 + overlap.
        assert!(a.compute_fraction + a.comm_fraction + a.memory_fraction + a.idle_fraction <= 1.5);
    }
}
