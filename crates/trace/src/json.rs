//! JSON (de)serialization of profiles.
//!
//! Mirrors the role of Nsight Systems' export files: profiles written by the
//! profiler are loaded back by the preprocessing stage. JSON keeps the traces
//! human-inspectable; the format is versioned for forward compatibility.

use crate::profile::{ConfigProfile, ExperimentProfiles};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct VersionedExperiment {
    version: u32,
    experiment: ExperimentProfiles,
}

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceIoError {
    Io(io::Error),
    Format(serde_json::Error),
    UnsupportedVersion { found: u32, supported: u32 },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Format(e) => write!(f, "trace format error: {e}"),
            TraceIoError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported trace format version {found} (supported: {supported})"
            ),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Format(e)
    }
}

/// Serializes an experiment to a JSON string.
pub fn to_json(experiment: &ExperimentProfiles) -> Result<String, TraceIoError> {
    let _span = extradeep_obs::span("trace.to_json");
    let versioned = VersionedExperiment {
        version: FORMAT_VERSION,
        experiment: experiment.clone(),
    };
    Ok(serde_json::to_string(&versioned)?)
}

/// Deserializes an experiment from a JSON string.
pub fn from_json(json: &str) -> Result<ExperimentProfiles, TraceIoError> {
    let _span = extradeep_obs::span("trace.from_json");
    let versioned: VersionedExperiment = serde_json::from_str(json)?;
    if versioned.version != FORMAT_VERSION {
        return Err(TraceIoError::UnsupportedVersion {
            found: versioned.version,
            supported: FORMAT_VERSION,
        });
    }
    Ok(versioned.experiment)
}

/// Writes an experiment to a file.
pub fn save(experiment: &ExperimentProfiles, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    let _span = extradeep_obs::span("trace.save");
    fs::write(path, to_json(experiment)?)?;
    Ok(())
}

/// Reads an experiment from a file.
pub fn load(path: impl AsRef<Path>) -> Result<ExperimentProfiles, TraceIoError> {
    let _span = extradeep_obs::span("trace.load");
    from_json(&fs::read_to_string(path)?)
}

/// Serializes one configuration profile (for per-config export).
pub fn config_to_json(profile: &ConfigProfile) -> Result<String, TraceIoError> {
    Ok(serde_json::to_string(profile)?)
}

/// Deserializes one configuration profile.
pub fn config_from_json(json: &str) -> Result<ConfigProfile, TraceIoError> {
    Ok(serde_json::from_str(json)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::config::{MeasurementConfig, TrainingMeta};
    use crate::domain::ApiDomain;
    use crate::marks::StepPhase;

    fn sample_experiment() -> ExperimentProfiles {
        let meta = TrainingMeta {
            batch_size: 256,
            train_samples: 50_000,
            val_samples: 10_000,
            data_parallel: 4,
            model_parallel: 1,
            cores_per_rank: 8,
        };
        let mut exp = ExperimentProfiles::new();
        for rep in 0..2 {
            let mut cp = ConfigProfile::new(MeasurementConfig::ranks(4), rep, meta);
            for rank in 0..2 {
                let mut b = TraceBuilder::new(rank);
                b.begin_epoch(0);
                b.begin_step(0, 0, StepPhase::Training);
                b.emit("EigenMetaKernel", ApiDomain::CudaKernel, 1000 + rank as u64);
                b.emit_bytes("MPI_Allreduce", ApiDomain::Mpi, 500, 1 << 16);
                b.end_step();
                b.end_epoch();
                cp.ranks.push(b.finish());
            }
            cp.execution_seconds = 12.5;
            cp.profiling_seconds = 0.7;
            exp.push(cp);
        }
        exp
    }

    #[test]
    fn json_roundtrip_preserves_experiment() {
        let exp = sample_experiment();
        let json = to_json(&exp).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(exp, back);
    }

    #[test]
    fn file_roundtrip() {
        let exp = sample_experiment();
        let dir = std::env::temp_dir().join("extradeep-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exp.json");
        save(&exp, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(exp, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let exp = sample_experiment();
        let json = to_json(&exp)
            .unwrap()
            .replacen("\"version\":1", "\"version\":99", 1);
        match from_json(&json) {
            Err(TraceIoError::UnsupportedVersion { found, .. }) => assert_eq!(found, 99),
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_is_a_format_error() {
        assert!(matches!(
            from_json("{not json"),
            Err(TraceIoError::Format(_))
        ));
    }

    #[test]
    fn config_profile_roundtrip() {
        let exp = sample_experiment();
        let cp = &exp.profiles[0];
        let json = config_to_json(cp).unwrap();
        let back = config_from_json(&json).unwrap();
        assert_eq!(*cp, back);
    }
}
