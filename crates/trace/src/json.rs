//! JSON (de)serialization of profiles.
//!
//! Mirrors the role of Nsight Systems' export files: profiles written by the
//! profiler are loaded back by the preprocessing stage. JSON keeps the traces
//! human-inspectable; the format is versioned for forward compatibility.

use crate::profile::{ConfigProfile, ExperimentProfiles};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct VersionedExperiment {
    version: u32,
    experiment: ExperimentProfiles,
}

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceIoError {
    Io(io::Error),
    Format(serde_json::Error),
    UnsupportedVersion {
        found: u32,
        supported: u32,
    },
    /// Any of the above, annotated with the file it occurred in — so an
    /// error propagated out of a multi-file load still names the offender.
    File {
        path: PathBuf,
        source: Box<TraceIoError>,
    },
}

impl TraceIoError {
    /// Wraps an error with the path of the file it came from (idempotent:
    /// an error already carrying a path is returned unchanged).
    pub fn in_file(self, path: impl Into<PathBuf>) -> TraceIoError {
        match self {
            TraceIoError::File { .. } => self,
            other => TraceIoError::File {
                path: path.into(),
                source: Box::new(other),
            },
        }
    }

    /// The file the error occurred in, when known.
    pub fn path(&self) -> Option<&Path> {
        match self {
            TraceIoError::File { path, .. } => Some(path),
            _ => None,
        }
    }
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Format(e) => write!(f, "trace format error: {e}"),
            TraceIoError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported trace format version {found} (supported: {supported})"
            ),
            TraceIoError::File { path, source } => {
                write!(f, "{} (file: {})", source, path.display())
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::File { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Format(e)
    }
}

/// Serializes an experiment to a JSON string.
pub fn to_json(experiment: &ExperimentProfiles) -> Result<String, TraceIoError> {
    let _span = extradeep_obs::span("trace.to_json");
    let versioned = VersionedExperiment {
        version: FORMAT_VERSION,
        experiment: experiment.clone(),
    };
    Ok(serde_json::to_string(&versioned)?)
}

/// Deserializes an experiment from a JSON string.
pub fn from_json(json: &str) -> Result<ExperimentProfiles, TraceIoError> {
    let _span = extradeep_obs::span("trace.from_json");
    let versioned: VersionedExperiment = serde_json::from_str(json)?;
    if versioned.version != FORMAT_VERSION {
        return Err(TraceIoError::UnsupportedVersion {
            found: versioned.version,
            supported: FORMAT_VERSION,
        });
    }
    Ok(versioned.experiment)
}

/// Writes an experiment to a file. Errors name the file.
pub fn save(experiment: &ExperimentProfiles, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    let _span = extradeep_obs::span("trace.save");
    let path = path.as_ref();
    fs::write(path, to_json(experiment).map_err(|e| e.in_file(path))?)
        .map_err(|e| TraceIoError::from(e).in_file(path))?;
    Ok(())
}

/// Reads an experiment from a file. Errors — unreadable file, malformed
/// JSON, unsupported version — name the file.
pub fn load(path: impl AsRef<Path>) -> Result<ExperimentProfiles, TraceIoError> {
    let _span = extradeep_obs::span("trace.load");
    let path = path.as_ref();
    let text = fs::read_to_string(path).map_err(|e| TraceIoError::from(e).in_file(path))?;
    from_json(&text).map_err(|e| e.in_file(path))
}

/// Serializes one configuration profile (for per-config export).
pub fn config_to_json(profile: &ConfigProfile) -> Result<String, TraceIoError> {
    Ok(serde_json::to_string(profile)?)
}

/// Deserializes one configuration profile.
pub fn config_from_json(json: &str) -> Result<ConfigProfile, TraceIoError> {
    Ok(serde_json::from_str(json)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::config::{MeasurementConfig, TrainingMeta};
    use crate::domain::ApiDomain;
    use crate::marks::StepPhase;

    fn sample_experiment() -> ExperimentProfiles {
        let meta = TrainingMeta {
            batch_size: 256,
            train_samples: 50_000,
            val_samples: 10_000,
            data_parallel: 4,
            model_parallel: 1,
            cores_per_rank: 8,
        };
        let mut exp = ExperimentProfiles::new();
        for rep in 0..2 {
            let mut cp = ConfigProfile::new(MeasurementConfig::ranks(4), rep, meta);
            for rank in 0..2 {
                let mut b = TraceBuilder::new(rank);
                b.begin_epoch(0);
                b.begin_step(0, 0, StepPhase::Training);
                b.emit("EigenMetaKernel", ApiDomain::CudaKernel, 1000 + rank as u64);
                b.emit_bytes("MPI_Allreduce", ApiDomain::Mpi, 500, 1 << 16);
                b.end_step();
                b.end_epoch();
                cp.ranks.push(b.finish());
            }
            cp.execution_seconds = 12.5;
            cp.profiling_seconds = 0.7;
            exp.push(cp);
        }
        exp
    }

    #[test]
    fn json_roundtrip_preserves_experiment() {
        let exp = sample_experiment();
        let json = to_json(&exp).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(exp, back);
    }

    #[test]
    fn file_roundtrip() {
        let exp = sample_experiment();
        let dir = std::env::temp_dir().join("extradeep-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exp.json");
        save(&exp, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(exp, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let exp = sample_experiment();
        let json = to_json(&exp)
            .unwrap()
            .replacen("\"version\":1", "\"version\":99", 1);
        match from_json(&json) {
            Err(TraceIoError::UnsupportedVersion { found, .. }) => assert_eq!(found, 99),
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_is_a_format_error() {
        assert!(matches!(
            from_json("{not json"),
            Err(TraceIoError::Format(_))
        ));
    }

    #[test]
    fn load_error_names_the_file() {
        let err = load("/nonexistent/extradeep-no-such-trace.json").unwrap_err();
        assert_eq!(
            err.path().unwrap(),
            Path::new("/nonexistent/extradeep-no-such-trace.json")
        );
        assert!(err.to_string().contains("extradeep-no-such-trace.json"));
        assert!(matches!(
            err,
            TraceIoError::File { ref source, .. } if matches!(**source, TraceIoError::Io(_))
        ));
    }

    #[test]
    fn corrupt_file_error_names_the_file() {
        let dir = std::env::temp_dir().join("extradeep-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "{definitely not a trace").unwrap();
        let err = load(&path).unwrap_err();
        assert_eq!(err.path().unwrap(), path.as_path());
        assert!(matches!(
            err,
            TraceIoError::File { ref source, .. } if matches!(**source, TraceIoError::Format(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn in_file_is_idempotent() {
        let err = TraceIoError::from(io::Error::other("boom"))
            .in_file("a.json")
            .in_file("b.json");
        assert_eq!(err.path().unwrap(), Path::new("a.json"));
    }

    #[test]
    fn config_profile_roundtrip() {
        let exp = sample_experiment();
        let cp = &exp.profiles[0];
        let json = config_to_json(cp).unwrap();
        let back = config_from_json(&json).unwrap();
        assert_eq!(*cp, back);
    }
}
