//! NVTX step and epoch marks.
//!
//! During instrumentation Extra-Deep injects NVTX marks into the training
//! step and epoch callbacks, producing timestamps "indicating the start and
//! end of each training step s and epoch e during profiling" (paper §2.2).
//! The aggregation uses them to decide which kernel executions belong to
//! which training/validation step.

use serde::{Deserialize, Serialize};

/// Whether a step updates gradients (training) or only evaluates (validation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StepPhase {
    Training,
    Validation,
}

impl StepPhase {
    pub const ALL: [StepPhase; 2] = [StepPhase::Training, StepPhase::Validation];

    pub fn label(self) -> &'static str {
        match self {
            StepPhase::Training => "training",
            StepPhase::Validation => "validation",
        }
    }
}

/// The NVTX mark delimiting one training/validation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepMark {
    /// Epoch index (0-based).
    pub epoch: u32,
    /// Step index within the epoch (0-based).
    pub step: u32,
    pub phase: StepPhase,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl StepMark {
    pub fn new(epoch: u32, step: u32, phase: StepPhase, start_ns: u64, end_ns: u64) -> Self {
        assert!(end_ns >= start_ns, "step must end after it starts");
        StepMark {
            epoch,
            step,
            phase,
            start_ns,
            end_ns,
        }
    }

    /// Saturating: deserialized marks can be inverted (serde bypasses the
    /// constructor assertion), and an underflow panic here would take down
    /// the whole pipeline on one bad mark. Validation/repair flag and fix
    /// inverted marks; until then they read as zero-length.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    pub fn contains(&self, t_ns: u64) -> bool {
        t_ns >= self.start_ns && t_ns < self.end_ns
    }
}

/// The NVTX mark delimiting one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochMark {
    pub epoch: u32,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl EpochMark {
    pub fn new(epoch: u32, start_ns: u64, end_ns: u64) -> Self {
        assert!(end_ns >= start_ns, "epoch must end after it starts");
        EpochMark {
            epoch,
            start_ns,
            end_ns,
        }
    }

    /// Saturating, for the same reason as [`StepMark::duration_ns`].
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_containment_is_half_open() {
        let s = StepMark::new(0, 0, StepPhase::Training, 100, 200);
        assert!(s.contains(100));
        assert!(s.contains(199));
        assert!(!s.contains(200));
        assert!(!s.contains(99));
        assert_eq!(s.duration_ns(), 100);
    }

    #[test]
    #[should_panic]
    fn inverted_step_panics() {
        let _ = StepMark::new(0, 0, StepPhase::Training, 200, 100);
    }

    #[test]
    fn epoch_duration() {
        let e = EpochMark::new(1, 1000, 5000);
        assert_eq!(e.duration_ns(), 4000);
    }

    #[test]
    fn phases_have_labels() {
        assert_eq!(StepPhase::Training.label(), "training");
        assert_eq!(StepPhase::Validation.label(), "validation");
    }
}
