//! Profiled events and the metrics they carry.

use crate::domain::{ApiDomain, KernelCategory};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The metrics Extra-Deep models (paper §2.1: "we measure the runtime and the
/// number of visits for each instrumented function... For the memory
/// operations, we additionally measure the number of transferred bytes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MetricKind {
    /// Wall-clock runtime (seconds when aggregated; nanoseconds in events).
    Time,
    /// Number of executions of a kernel.
    Visits,
    /// Bytes transferred (memory operations and communication).
    Bytes,
}

impl MetricKind {
    pub const ALL: [MetricKind; 3] = [MetricKind::Time, MetricKind::Visits, MetricKind::Bytes];

    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Time => "time",
            MetricKind::Visits => "visits",
            MetricKind::Bytes => "bytes",
        }
    }
}

/// One profiled execution of a kernel / API function, as a profiling tool
/// such as Nsight Systems would export it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Kernel / function name (interned: many events share one name).
    pub name: Arc<str>,
    pub domain: ApiDomain,
    /// Category override; `None` means the domain's default applies.
    pub category: Option<KernelCategory>,
    /// Start timestamp in nanoseconds since profile begin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// Bytes transferred, when applicable (memcpy/memset/collectives).
    pub bytes: Option<u64>,
    /// Number of kernel executions this row aggregates.
    ///
    /// Profilers commonly export per-kernel *rows* that sum several
    /// back-to-back launches of the same kernel (Nsight's stats views do
    /// this); `duration_ns` and `bytes` then hold totals across the row.
    /// Defaults to 1 — one row per execution.
    pub visits: u64,
    /// The enclosing NVTX region path at emission time, e.g.
    /// `train/training_step/forward` — the call-tree position the paper's
    /// Fig. 1 displays ("Calltree: kernel models"). `None` when the
    /// producer recorded no regions.
    #[serde(default)]
    pub call_path: Option<Arc<str>>,
}

impl Event {
    pub fn new(
        name: impl Into<Arc<str>>,
        domain: ApiDomain,
        start_ns: u64,
        duration_ns: u64,
    ) -> Self {
        Event {
            name: name.into(),
            domain,
            category: None,
            start_ns,
            duration_ns,
            bytes: None,
            visits: 1,
            call_path: None,
        }
    }

    pub fn with_call_path(mut self, path: impl Into<Arc<str>>) -> Self {
        self.call_path = Some(path.into());
        self
    }

    pub fn with_bytes(mut self, bytes: u64) -> Self {
        self.bytes = Some(bytes);
        self
    }

    pub fn with_visits(mut self, visits: u64) -> Self {
        self.visits = visits.max(1);
        self
    }

    pub fn with_category(mut self, category: KernelCategory) -> Self {
        self.category = Some(category);
        self
    }

    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.duration_ns
    }

    /// Effective category: the explicit override or the domain default.
    pub fn category(&self) -> KernelCategory {
        self.category
            .unwrap_or_else(|| self.domain.default_category())
    }

    /// The value of one metric for this event row.
    ///
    /// Time is reported in seconds, visits as the number of executions the
    /// row aggregates, bytes as the payload (0 when not applicable).
    pub fn metric_value(&self, metric: MetricKind) -> f64 {
        match metric {
            MetricKind::Time => crate::units::ns_to_secs(self.duration_ns),
            MetricKind::Visits => self.visits as f64,
            MetricKind::Bytes => self.bytes.unwrap_or(0) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_end_and_metrics() {
        let e = Event::new("MPI_Allreduce", ApiDomain::Mpi, 100, 50).with_bytes(4096);
        assert_eq!(e.end_ns(), 150);
        assert_eq!(e.metric_value(MetricKind::Visits), 1.0);
        assert_eq!(e.metric_value(MetricKind::Bytes), 4096.0);
        assert!((e.metric_value(MetricKind::Time) - 50e-9).abs() < 1e-18);
    }

    #[test]
    fn category_defaults_from_domain() {
        let e = Event::new("ncclAllReduce", ApiDomain::Nccl, 0, 1);
        assert_eq!(e.category(), KernelCategory::Communication);
    }

    #[test]
    fn category_override_wins() {
        let e = Event::new("custom_copy", ApiDomain::CudaKernel, 0, 1)
            .with_category(KernelCategory::MemoryOperation);
        assert_eq!(e.category(), KernelCategory::MemoryOperation);
    }

    #[test]
    fn bytes_default_zero() {
        let e = Event::new("EigenMetaKernel", ApiDomain::CudaKernel, 0, 1);
        assert_eq!(e.metric_value(MetricKind::Bytes), 0.0);
    }

    #[test]
    fn names_are_shared() {
        let name: Arc<str> = Arc::from("volta_sgemm_128x64_nn");
        let a = Event::new(name.clone(), ApiDomain::CuBlas, 0, 1);
        let b = Event::new(name.clone(), ApiDomain::CuBlas, 1, 1);
        assert!(Arc::ptr_eq(&a.name, &b.name));
    }
}
