//! Trace validation.
//!
//! Profiles arriving from external tools (or a buggy producer) can be
//! malformed; the aggregation pipeline assumes ordered, non-overlapping step
//! marks and in-span events. `validate` reports every violation rather than
//! stopping at the first, so a trace can be diagnosed in one pass.

use crate::profile::{ConfigProfile, RankProfile};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One validation problem found in a profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceIssue {
    /// Step marks of one epoch are not sorted by start time.
    UnorderedSteps { rank: u32 },
    /// Two step marks overlap in time.
    OverlappingSteps { rank: u32, first: u32, second: u32 },
    /// An event has zero duration (suspicious, usually a unit bug).
    ZeroDurationEvent { rank: u32, name: String },
    /// An event starts after the last epoch ends.
    EventOutsideSpan { rank: u32, name: String },
    /// A step mark references an epoch with no epoch mark.
    StepWithoutEpoch { rank: u32, epoch: u32 },
    /// The profile has no events at all.
    EmptyRank { rank: u32 },
}

impl fmt::Display for TraceIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIssue::UnorderedSteps { rank } => write!(f, "rank {rank}: unordered step marks"),
            TraceIssue::OverlappingSteps {
                rank,
                first,
                second,
            } => write!(f, "rank {rank}: steps {first} and {second} overlap"),
            TraceIssue::ZeroDurationEvent { rank, name } => {
                write!(f, "rank {rank}: zero-duration event '{name}'")
            }
            TraceIssue::EventOutsideSpan { rank, name } => {
                write!(f, "rank {rank}: event '{name}' outside profiled span")
            }
            TraceIssue::StepWithoutEpoch { rank, epoch } => {
                write!(f, "rank {rank}: step references unknown epoch {epoch}")
            }
            TraceIssue::EmptyRank { rank } => write!(f, "rank {rank}: no events"),
        }
    }
}

/// Validates one rank profile.
pub fn validate_rank(profile: &RankProfile) -> Vec<TraceIssue> {
    let mut issues = Vec::new();
    let rank = profile.rank;

    if profile.events.is_empty() {
        issues.push(TraceIssue::EmptyRank { rank });
    }

    // Ordering and overlap of step marks.
    let mut sorted = profile.step_marks.clone();
    sorted.sort_by_key(|s| s.start_ns);
    if sorted.iter().zip(&profile.step_marks).any(|(a, b)| a != b) {
        issues.push(TraceIssue::UnorderedSteps { rank });
    }
    for w in sorted.windows(2) {
        if w[1].start_ns < w[0].end_ns {
            issues.push(TraceIssue::OverlappingSteps {
                rank,
                first: w[0].step,
                second: w[1].step,
            });
        }
    }

    // Steps must belong to a marked epoch (when epochs are marked at all).
    if !profile.epoch_marks.is_empty() {
        for s in &profile.step_marks {
            if !profile.epoch_marks.iter().any(|e| e.epoch == s.epoch) {
                issues.push(TraceIssue::StepWithoutEpoch {
                    rank,
                    epoch: s.epoch,
                });
            }
        }
    }

    let span = profile.span_ns();
    for e in &profile.events {
        if e.duration_ns == 0 {
            issues.push(TraceIssue::ZeroDurationEvent {
                rank,
                name: e.name.to_string(),
            });
        }
        if e.start_ns > span {
            issues.push(TraceIssue::EventOutsideSpan {
                rank,
                name: e.name.to_string(),
            });
        }
    }

    issues
}

/// Validates all ranks of a configuration profile.
pub fn validate_config(profile: &ConfigProfile) -> Vec<TraceIssue> {
    profile.ranks.iter().flat_map(validate_rank).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::domain::ApiDomain;
    use crate::marks::{StepMark, StepPhase};

    #[test]
    fn well_formed_trace_has_no_issues() {
        let mut b = TraceBuilder::new(0);
        b.begin_epoch(0);
        b.begin_step(0, 0, StepPhase::Training);
        b.emit("k", ApiDomain::CudaKernel, 100);
        b.end_step();
        b.end_epoch();
        assert!(validate_rank(&b.finish()).is_empty());
    }

    #[test]
    fn detects_empty_rank() {
        let p = RankProfile::new(7);
        let issues = validate_rank(&p);
        assert!(issues.contains(&TraceIssue::EmptyRank { rank: 7 }));
    }

    #[test]
    fn detects_overlapping_steps() {
        let mut p = RankProfile::new(0);
        p.step_marks
            .push(StepMark::new(0, 0, StepPhase::Training, 0, 100));
        p.step_marks
            .push(StepMark::new(0, 1, StepPhase::Training, 50, 150));
        let issues = validate_rank(&p);
        assert!(issues
            .iter()
            .any(|i| matches!(i, TraceIssue::OverlappingSteps { .. })));
    }

    #[test]
    fn detects_unordered_steps() {
        let mut p = RankProfile::new(0);
        p.step_marks
            .push(StepMark::new(0, 1, StepPhase::Training, 200, 300));
        p.step_marks
            .push(StepMark::new(0, 0, StepPhase::Training, 0, 100));
        let issues = validate_rank(&p);
        assert!(issues.contains(&TraceIssue::UnorderedSteps { rank: 0 }));
    }

    #[test]
    fn detects_zero_duration_and_step_without_epoch() {
        let mut b = TraceBuilder::new(0);
        b.begin_epoch(0);
        b.emit("zero", ApiDomain::Os, 0);
        b.end_epoch();
        let mut p = b.finish();
        p.step_marks
            .push(StepMark::new(5, 0, StepPhase::Validation, 0, 0));
        let issues = validate_rank(&p);
        assert!(issues
            .iter()
            .any(|i| matches!(i, TraceIssue::ZeroDurationEvent { .. })));
        assert!(issues
            .iter()
            .any(|i| matches!(i, TraceIssue::StepWithoutEpoch { epoch: 5, .. })));
    }

    #[test]
    fn issues_render_human_readably() {
        let i = TraceIssue::OverlappingSteps {
            rank: 2,
            first: 1,
            second: 2,
        };
        assert_eq!(i.to_string(), "rank 2: steps 1 and 2 overlap");
    }
}
