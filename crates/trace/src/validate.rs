//! Trace validation.
//!
//! Profiles arriving from external tools (or a buggy producer) can be
//! malformed; the aggregation pipeline assumes ordered, non-overlapping step
//! marks and in-span events. `validate` reports every violation rather than
//! stopping at the first, so a trace can be diagnosed in one pass.

use crate::profile::{ConfigProfile, RankProfile};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One validation problem found in a profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceIssue {
    /// Step marks of one epoch are not sorted by start time.
    UnorderedSteps { rank: u32 },
    /// Two step marks overlap in time.
    OverlappingSteps { rank: u32, first: u32, second: u32 },
    /// An event has zero duration (suspicious, usually a unit bug).
    ZeroDurationEvent { rank: u32, name: String },
    /// An event starts after the last epoch ends.
    EventOutsideSpan { rank: u32, name: String },
    /// A step mark references an epoch with no epoch mark.
    StepWithoutEpoch { rank: u32, epoch: u32 },
    /// The profile has no events at all.
    EmptyRank { rank: u32 },
    /// A step mark ends before it starts (possible via deserialization,
    /// which bypasses the constructor's ordering assertion).
    InvertedStepMark { rank: u32, epoch: u32, step: u32 },
    /// An epoch mark ends before it starts.
    InvertedEpochMark { rank: u32, epoch: u32 },
    /// The same `(epoch, step, phase)` step mark appears more than once.
    DuplicateStepMark { rank: u32, epoch: u32, step: u32 },
    /// A rank has step marks but no epoch marks while other ranks of the
    /// same configuration carry epoch marks (cross-rank check).
    MissingEpochMarks { rank: u32 },
    /// A rank recorded a different number of epochs than the majority of
    /// ranks in the same configuration (cross-rank check) — typical of a
    /// truncated per-rank export.
    EpochCountMismatch {
        rank: u32,
        expected: u32,
        found: u32,
    },
}

impl fmt::Display for TraceIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIssue::UnorderedSteps { rank } => write!(f, "rank {rank}: unordered step marks"),
            TraceIssue::OverlappingSteps {
                rank,
                first,
                second,
            } => write!(f, "rank {rank}: steps {first} and {second} overlap"),
            TraceIssue::ZeroDurationEvent { rank, name } => {
                write!(f, "rank {rank}: zero-duration event '{name}'")
            }
            TraceIssue::EventOutsideSpan { rank, name } => {
                write!(f, "rank {rank}: event '{name}' outside profiled span")
            }
            TraceIssue::StepWithoutEpoch { rank, epoch } => {
                write!(f, "rank {rank}: step references unknown epoch {epoch}")
            }
            TraceIssue::EmptyRank { rank } => write!(f, "rank {rank}: no events"),
            TraceIssue::InvertedStepMark { rank, epoch, step } => {
                write!(f, "rank {rank}: step e{epoch}s{step} ends before it starts")
            }
            TraceIssue::InvertedEpochMark { rank, epoch } => {
                write!(f, "rank {rank}: epoch {epoch} ends before it starts")
            }
            TraceIssue::DuplicateStepMark { rank, epoch, step } => {
                write!(f, "rank {rank}: duplicate step mark e{epoch}s{step}")
            }
            TraceIssue::MissingEpochMarks { rank } => {
                write!(
                    f,
                    "rank {rank}: no epoch marks while sibling ranks have them"
                )
            }
            TraceIssue::EpochCountMismatch {
                rank,
                expected,
                found,
            } => write!(
                f,
                "rank {rank}: {found} epoch marks, siblings have {expected}"
            ),
        }
    }
}

/// Validates one rank profile.
pub fn validate_rank(profile: &RankProfile) -> Vec<TraceIssue> {
    let mut issues = Vec::new();
    let rank = profile.rank;

    if profile.events.is_empty() {
        issues.push(TraceIssue::EmptyRank { rank });
    }

    // Inverted marks can only arrive through deserialization (the
    // constructors assert ordering), but a loaded trace is exactly the
    // input validation exists for.
    for s in &profile.step_marks {
        if s.end_ns < s.start_ns {
            issues.push(TraceIssue::InvertedStepMark {
                rank,
                epoch: s.epoch,
                step: s.step,
            });
        }
    }
    for e in &profile.epoch_marks {
        if e.end_ns < e.start_ns {
            issues.push(TraceIssue::InvertedEpochMark {
                rank,
                epoch: e.epoch,
            });
        }
    }

    // Duplicated step marks (a profiler flushing a mark twice).
    let mut keys: Vec<(u32, u32, crate::marks::StepPhase)> = profile
        .step_marks
        .iter()
        .map(|s| (s.epoch, s.step, s.phase))
        .collect();
    keys.sort_unstable();
    for w in keys.windows(2) {
        if w[0] == w[1] {
            issues.push(TraceIssue::DuplicateStepMark {
                rank,
                epoch: w[0].0,
                step: w[0].1,
            });
        }
    }

    // Ordering and overlap of step marks.
    let mut sorted = profile.step_marks.clone();
    sorted.sort_by_key(|s| s.start_ns);
    if sorted.iter().zip(&profile.step_marks).any(|(a, b)| a != b) {
        issues.push(TraceIssue::UnorderedSteps { rank });
    }
    for w in sorted.windows(2) {
        if w[1].start_ns < w[0].end_ns {
            issues.push(TraceIssue::OverlappingSteps {
                rank,
                first: w[0].step,
                second: w[1].step,
            });
        }
    }

    // Steps must belong to a marked epoch (when epochs are marked at all).
    if !profile.epoch_marks.is_empty() {
        for s in &profile.step_marks {
            if !profile.epoch_marks.iter().any(|e| e.epoch == s.epoch) {
                issues.push(TraceIssue::StepWithoutEpoch {
                    rank,
                    epoch: s.epoch,
                });
            }
        }
    }

    let span = profile.span_ns();
    for e in &profile.events {
        if e.duration_ns == 0 {
            issues.push(TraceIssue::ZeroDurationEvent {
                rank,
                name: e.name.to_string(),
            });
        }
        if e.start_ns > span {
            issues.push(TraceIssue::EventOutsideSpan {
                rank,
                name: e.name.to_string(),
            });
        }
    }

    issues
}

/// Validates all ranks of a configuration profile, including cross-rank
/// consistency: every recorded rank of one configuration ran the same
/// schedule, so they must agree on the number of profiled epochs.
pub fn validate_config(profile: &ConfigProfile) -> Vec<TraceIssue> {
    let mut issues: Vec<TraceIssue> = profile.ranks.iter().flat_map(validate_rank).collect();

    // Majority epoch count across ranks that have any epoch marks.
    let counts: Vec<u32> = profile
        .ranks
        .iter()
        .map(|r| r.epoch_marks.len() as u32)
        .filter(|&c| c > 0)
        .collect();
    if counts.is_empty() {
        return issues;
    }
    let expected = majority(&counts);

    for r in &profile.ranks {
        let found = r.epoch_marks.len() as u32;
        if found == 0 {
            // Only a cross-rank problem: siblings carry epoch marks.
            if !r.step_marks.is_empty() || !r.events.is_empty() {
                issues.push(TraceIssue::MissingEpochMarks { rank: r.rank });
            }
        } else if found != expected {
            issues.push(TraceIssue::EpochCountMismatch {
                rank: r.rank,
                expected,
                found,
            });
        }
    }
    issues
}

/// The most common value; ties break toward the larger count (a truncated
/// export loses epochs, it does not invent them).
fn majority(counts: &[u32]) -> u32 {
    let mut sorted = counts.to_vec();
    sorted.sort_unstable();
    let mut best = sorted[0];
    let mut best_n = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let j = sorted[i..].iter().take_while(|&&c| c == sorted[i]).count();
        if j >= best_n {
            best = sorted[i];
            best_n = j;
        }
        i += j;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::domain::ApiDomain;
    use crate::marks::{StepMark, StepPhase};

    #[test]
    fn well_formed_trace_has_no_issues() {
        let mut b = TraceBuilder::new(0);
        b.begin_epoch(0);
        b.begin_step(0, 0, StepPhase::Training);
        b.emit("k", ApiDomain::CudaKernel, 100);
        b.end_step();
        b.end_epoch();
        assert!(validate_rank(&b.finish()).is_empty());
    }

    #[test]
    fn detects_empty_rank() {
        let p = RankProfile::new(7);
        let issues = validate_rank(&p);
        assert!(issues.contains(&TraceIssue::EmptyRank { rank: 7 }));
    }

    #[test]
    fn detects_overlapping_steps() {
        let mut p = RankProfile::new(0);
        p.step_marks
            .push(StepMark::new(0, 0, StepPhase::Training, 0, 100));
        p.step_marks
            .push(StepMark::new(0, 1, StepPhase::Training, 50, 150));
        let issues = validate_rank(&p);
        assert!(issues
            .iter()
            .any(|i| matches!(i, TraceIssue::OverlappingSteps { .. })));
    }

    #[test]
    fn detects_unordered_steps() {
        let mut p = RankProfile::new(0);
        p.step_marks
            .push(StepMark::new(0, 1, StepPhase::Training, 200, 300));
        p.step_marks
            .push(StepMark::new(0, 0, StepPhase::Training, 0, 100));
        let issues = validate_rank(&p);
        assert!(issues.contains(&TraceIssue::UnorderedSteps { rank: 0 }));
    }

    #[test]
    fn detects_zero_duration_and_step_without_epoch() {
        let mut b = TraceBuilder::new(0);
        b.begin_epoch(0);
        b.emit("zero", ApiDomain::Os, 0);
        b.end_epoch();
        let mut p = b.finish();
        p.step_marks
            .push(StepMark::new(5, 0, StepPhase::Validation, 0, 0));
        let issues = validate_rank(&p);
        assert!(issues
            .iter()
            .any(|i| matches!(i, TraceIssue::ZeroDurationEvent { .. })));
        assert!(issues
            .iter()
            .any(|i| matches!(i, TraceIssue::StepWithoutEpoch { epoch: 5, .. })));
    }

    #[test]
    fn detects_inverted_and_duplicate_marks() {
        // Inverted marks cannot be built via the constructors; splice the
        // fields directly, as a malformed JSON load would.
        let mut p = RankProfile::new(3);
        let mut m = StepMark::new(0, 0, StepPhase::Training, 0, 100);
        m.start_ns = 200;
        m.end_ns = 100;
        p.step_marks.push(m);
        p.step_marks
            .push(StepMark::new(0, 1, StepPhase::Training, 300, 400));
        p.step_marks
            .push(StepMark::new(0, 1, StepPhase::Training, 500, 600));
        let mut e = crate::marks::EpochMark::new(0, 0, 100);
        e.start_ns = 900;
        e.end_ns = 100;
        p.epoch_marks.push(e);
        let issues = validate_rank(&p);
        assert!(issues.contains(&TraceIssue::InvertedStepMark {
            rank: 3,
            epoch: 0,
            step: 0
        }));
        assert!(issues.contains(&TraceIssue::InvertedEpochMark { rank: 3, epoch: 0 }));
        assert!(issues.contains(&TraceIssue::DuplicateStepMark {
            rank: 3,
            epoch: 0,
            step: 1
        }));
    }

    /// Builds one well-formed rank with `epochs` epochs of one step each.
    fn well_formed_rank(rank: u32, epochs: u32) -> RankProfile {
        let mut b = TraceBuilder::new(rank);
        for e in 0..epochs {
            b.begin_epoch(e);
            b.begin_step(e, 0, StepPhase::Training);
            b.emit("k", ApiDomain::CudaKernel, 100);
            b.end_step();
            b.end_epoch();
        }
        b.finish()
    }

    fn config_of(ranks: Vec<RankProfile>) -> crate::profile::ConfigProfile {
        let meta = crate::config::TrainingMeta {
            batch_size: 1,
            train_samples: 1,
            val_samples: 0,
            data_parallel: 1,
            model_parallel: 1,
            cores_per_rank: 1,
        };
        let mut cp = crate::profile::ConfigProfile::new(
            crate::config::MeasurementConfig::ranks(ranks.len() as u32),
            0,
            meta,
        );
        cp.ranks = ranks;
        cp
    }

    #[test]
    fn cross_rank_epoch_count_mismatch_is_detected() {
        // Three ranks with 2 epochs, one truncated rank with 1.
        let cp = config_of(vec![
            well_formed_rank(0, 2),
            well_formed_rank(1, 2),
            well_formed_rank(2, 2),
            well_formed_rank(3, 1),
        ]);
        let issues = validate_config(&cp);
        assert!(issues.contains(&TraceIssue::EpochCountMismatch {
            rank: 3,
            expected: 2,
            found: 1
        }));
        // The majority ranks are not flagged.
        assert!(!issues
            .iter()
            .any(|i| matches!(i, TraceIssue::EpochCountMismatch { rank, .. } if *rank != 3)));
    }

    #[test]
    fn cross_rank_missing_epoch_marks_is_detected() {
        let mut bare = well_formed_rank(2, 2);
        bare.epoch_marks.clear();
        let cp = config_of(vec![well_formed_rank(0, 2), well_formed_rank(1, 2), bare]);
        let issues = validate_config(&cp);
        assert!(issues.contains(&TraceIssue::MissingEpochMarks { rank: 2 }));
    }

    #[test]
    fn one_empty_rank_among_many_is_flagged_but_siblings_are_clean() {
        let cp = config_of(vec![
            well_formed_rank(0, 2),
            well_formed_rank(1, 2),
            RankProfile::new(2),
        ]);
        let issues = validate_config(&cp);
        assert!(issues.contains(&TraceIssue::EmptyRank { rank: 2 }));
        // The empty rank has no marks at all, so it must not additionally
        // be reported as a cross-rank mismatch; the healthy ranks must not
        // be flagged either.
        assert_eq!(issues.len(), 1, "{issues:?}");
    }

    #[test]
    fn uniform_config_has_no_cross_rank_issues() {
        let cp = config_of(vec![
            well_formed_rank(0, 2),
            well_formed_rank(1, 2),
            well_formed_rank(2, 2),
        ]);
        assert!(validate_config(&cp).is_empty());
    }

    #[test]
    fn issues_render_human_readably() {
        let i = TraceIssue::OverlappingSteps {
            rank: 2,
            first: 1,
            second: 2,
        };
        assert_eq!(i.to_string(), "rank 2: steps 1 and 2 overlap");
    }
}
