//! API domains and kernel categories.
//!
//! The paper measures "CUDA kernels, memset, memcopy, and NCCL operations on
//! the GPU, as well as CUDA API, cuBLAS, cuDNN, MPI, OS, and user-defined
//! function calls on the CPU" (§2.1 step 2) and later groups kernels into
//! computation, communication, and memory operations for application models.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which measurement interface / library an event was recorded from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ApiDomain {
    /// A CUDA kernel executed on the GPU.
    CudaKernel,
    /// A CUDA runtime/driver API call on the CPU (e.g. `cudaLaunchKernel`).
    CudaApi,
    /// A cuBLAS library call.
    CuBlas,
    /// A cuDNN library call.
    CuDnn,
    /// An MPI function call.
    Mpi,
    /// An NCCL collective on the GPU.
    Nccl,
    /// An OS / libc function call.
    Os,
    /// A user-defined function covered by NVTX instrumentation.
    Nvtx,
    /// A device/host memory copy.
    MemCpy,
    /// A device memory set.
    MemSet,
    /// File or dataset I/O.
    Io,
}

impl ApiDomain {
    pub const ALL: [ApiDomain; 11] = [
        ApiDomain::CudaKernel,
        ApiDomain::CudaApi,
        ApiDomain::CuBlas,
        ApiDomain::CuDnn,
        ApiDomain::Mpi,
        ApiDomain::Nccl,
        ApiDomain::Os,
        ApiDomain::Nvtx,
        ApiDomain::MemCpy,
        ApiDomain::MemSet,
        ApiDomain::Io,
    ];

    /// The default kernel category of events from this domain, used by the
    /// application-model aggregation (paper §2.2 step: categorize by type).
    pub fn default_category(self) -> KernelCategory {
        match self {
            ApiDomain::CudaKernel | ApiDomain::CuBlas | ApiDomain::CuDnn | ApiDomain::CudaApi => {
                KernelCategory::Computation
            }
            ApiDomain::Mpi | ApiDomain::Nccl => KernelCategory::Communication,
            ApiDomain::MemCpy | ApiDomain::MemSet => KernelCategory::MemoryOperation,
            ApiDomain::Io => KernelCategory::Io,
            ApiDomain::Os | ApiDomain::Nvtx => KernelCategory::Other,
        }
    }

    /// Short label used in reports (matches the paper's Table 2 rows).
    pub fn label(self) -> &'static str {
        match self {
            ApiDomain::CudaKernel => "CUDA kernels",
            ApiDomain::CudaApi => "CUDA API",
            ApiDomain::CuBlas => "cuBLAS",
            ApiDomain::CuDnn => "cuDNN",
            ApiDomain::Mpi => "MPI",
            ApiDomain::Nccl => "NCCL",
            ApiDomain::Os => "OS func.",
            ApiDomain::Nvtx => "NVTX func.",
            ApiDomain::MemCpy => "Memory ops. (memcpy)",
            ApiDomain::MemSet => "Memory ops. (memset)",
            ApiDomain::Io => "I/O",
        }
    }
}

impl fmt::Display for ApiDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// High-level category of work a kernel performs. Application models sum the
/// per-kernel metric values within each category (paper Eqs. 8-10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KernelCategory {
    Computation,
    Communication,
    MemoryOperation,
    Io,
    Other,
}

impl KernelCategory {
    pub const ALL: [KernelCategory; 5] = [
        KernelCategory::Computation,
        KernelCategory::Communication,
        KernelCategory::MemoryOperation,
        KernelCategory::Io,
        KernelCategory::Other,
    ];

    pub fn label(self) -> &'static str {
        match self {
            KernelCategory::Computation => "computation",
            KernelCategory::Communication => "communication",
            KernelCategory::MemoryOperation => "memory ops.",
            KernelCategory::Io => "I/O",
            KernelCategory::Other => "other",
        }
    }
}

impl fmt::Display for KernelCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn communication_domains_categorize_as_communication() {
        assert_eq!(
            ApiDomain::Mpi.default_category(),
            KernelCategory::Communication
        );
        assert_eq!(
            ApiDomain::Nccl.default_category(),
            KernelCategory::Communication
        );
    }

    #[test]
    fn memory_domains_categorize_as_memory() {
        assert_eq!(
            ApiDomain::MemCpy.default_category(),
            KernelCategory::MemoryOperation
        );
        assert_eq!(
            ApiDomain::MemSet.default_category(),
            KernelCategory::MemoryOperation
        );
    }

    #[test]
    fn compute_domains_categorize_as_computation() {
        for d in [
            ApiDomain::CudaKernel,
            ApiDomain::CuBlas,
            ApiDomain::CuDnn,
            ApiDomain::CudaApi,
        ] {
            assert_eq!(d.default_category(), KernelCategory::Computation);
        }
    }

    #[test]
    fn all_domains_listed_once() {
        let mut set = std::collections::HashSet::new();
        for d in ApiDomain::ALL {
            assert!(set.insert(d), "duplicate domain {d:?}");
        }
        assert_eq!(set.len(), 11);
    }

    #[test]
    fn labels_are_nonempty_and_displayable() {
        for d in ApiDomain::ALL {
            assert!(!d.label().is_empty());
            assert_eq!(format!("{d}"), d.label());
        }
        for c in KernelCategory::ALL {
            assert!(!c.label().is_empty());
        }
    }
}
