//! Call-tree view of a profile (paper Fig. 1: "Calltree: kernel models").
//!
//! Events carry the NVTX region path they were recorded under
//! (`train/training_step/forward`); this module folds a profile's events
//! into a region tree with per-node totals and the kernels executing at each
//! node — the structure Extra-P's GUI displays per call path.

use crate::profile::{ConfigProfile, RankProfile};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One node of the call tree.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CallNode {
    /// Total seconds of all events at or below this node.
    pub total_seconds: f64,
    /// Total kernel executions at or below this node.
    pub total_visits: u64,
    /// Kernels recorded directly at this node: name -> (seconds, visits).
    pub kernels: BTreeMap<String, (f64, u64)>,
    pub children: BTreeMap<String, CallNode>,
}

impl CallNode {
    fn insert(&mut self, path: &[&str], name: &str, seconds: f64, visits: u64) {
        self.total_seconds += seconds;
        self.total_visits += visits;
        match path.split_first() {
            None => {
                let e = self.kernels.entry(name.to_string()).or_insert((0.0, 0));
                e.0 += seconds;
                e.1 += visits;
            }
            Some((head, rest)) => {
                self.children
                    .entry(head.to_string())
                    .or_default()
                    .insert(rest, name, seconds, visits);
            }
        }
    }

    /// Looks up a node by slash-separated path.
    pub fn node(&self, path: &str) -> Option<&CallNode> {
        let mut cur = self;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            cur = cur.children.get(seg)?;
        }
        Some(cur)
    }

    fn render_into(&self, name: &str, depth: usize, top_kernels: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{name:<32} {:>10.3} ms  {:>8} visits\n",
            self.total_seconds * 1e3,
            self.total_visits
        ));
        let mut kernels: Vec<(&String, &(f64, u64))> = self.kernels.iter().collect();
        kernels.sort_by(|a, b| b.1 .0.total_cmp(&a.1 .0));
        for (k, (sec, vis)) in kernels.into_iter().take(top_kernels) {
            let kindent = "  ".repeat(depth + 1);
            out.push_str(&format!(
                "{kindent}· {k:<55} {:>9.3} ms  {vis:>6}x\n",
                sec * 1e3
            ));
        }
        for (child_name, child) in &self.children {
            child.render_into(child_name, depth + 1, top_kernels, out);
        }
    }
}

fn fold_rank(rank: &RankProfile, root: &mut CallNode) {
    for e in &rank.events {
        let seconds = crate::units::ns_to_secs(e.duration_ns);
        let path_owned;
        let path: Vec<&str> = match &e.call_path {
            Some(p) => {
                path_owned = p.to_string();
                path_owned.split('/').collect()
            }
            None => Vec::new(),
        };
        root.insert(&path, &e.name, seconds, e.visits);
    }
}

/// Builds the call tree of one configuration profile (all ranks folded).
pub fn call_tree(profile: &ConfigProfile) -> CallNode {
    let mut root = CallNode::default();
    for rank in &profile.ranks {
        fold_rank(rank, &mut root);
    }
    root
}

/// Renders the call tree with up to `top_kernels` kernels listed per node.
pub fn render_call_tree(profile: &ConfigProfile, top_kernels: usize) -> String {
    let tree = call_tree(profile);
    let mut out = format!("Call tree for {} (all ranks):\n", profile.config.id());
    tree.render_into("<root>", 0, top_kernels, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::config::{MeasurementConfig, TrainingMeta};
    use crate::domain::ApiDomain;
    use crate::marks::StepPhase;

    fn profile() -> ConfigProfile {
        let meta = TrainingMeta {
            batch_size: 1,
            train_samples: 1,
            val_samples: 0,
            data_parallel: 1,
            model_parallel: 1,
            cores_per_rank: 1,
        };
        let mut cp = ConfigProfile::new(MeasurementConfig::ranks(1), 0, meta);
        let mut b = TraceBuilder::new(0);
        b.begin_epoch(0);
        b.begin_step(0, 0, StepPhase::Training);
        b.push_region("train");
        b.push_region("forward");
        b.emit("gemm", ApiDomain::CudaKernel, 3_000);
        b.pop_region();
        b.push_region("exchange");
        b.emit("MPI_Allreduce", ApiDomain::Mpi, 1_000);
        b.pop_region();
        b.pop_region();
        b.emit("orphan", ApiDomain::Os, 500); // no region
        b.end_step();
        b.end_epoch();
        cp.ranks.push(b.finish());
        cp
    }

    #[test]
    fn tree_structure_follows_regions() {
        let tree = call_tree(&profile());
        let train = tree.node("train").expect("train node");
        assert!((train.total_seconds - 4_000e-9).abs() < 1e-15);
        let fwd = tree.node("train/forward").unwrap();
        assert_eq!(fwd.kernels["gemm"].1, 1);
        let ex = tree.node("train/exchange").unwrap();
        assert!(ex.kernels.contains_key("MPI_Allreduce"));
        // Orphan event lands at the root.
        assert!(tree.kernels.contains_key("orphan"));
    }

    #[test]
    fn totals_are_inclusive() {
        let tree = call_tree(&profile());
        // Root total covers everything.
        assert!((tree.total_seconds - 4_500e-9).abs() < 1e-15);
        assert_eq!(tree.total_visits, 3);
    }

    #[test]
    fn missing_path_lookup() {
        let tree = call_tree(&profile());
        assert!(tree.node("train/backward").is_none());
        assert!(tree.node("").is_some()); // root
    }

    #[test]
    fn render_shows_hierarchy() {
        let text = render_call_tree(&profile(), 3);
        assert!(text.contains("train"));
        assert!(text.contains("forward"));
        assert!(text.contains("gemm"));
        // Children are indented deeper than parents.
        let train_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("train"))
            .unwrap();
        let fwd_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("forward"))
            .unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(fwd_line) > indent(train_line));
    }
}
