//! Profile containers: per-rank event streams and per-configuration bundles.

use crate::config::{MeasurementConfig, TrainingMeta};
use crate::event::Event;
use crate::marks::{EpochMark, StepMark};
use serde::{Deserialize, Serialize};

/// The profile of one MPI rank in one measurement repetition: the raw event
/// stream plus the NVTX step/epoch marks (`app.x4.mpi0.r1` in Figure 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RankProfile {
    pub rank: u32,
    pub events: Vec<Event>,
    pub step_marks: Vec<StepMark>,
    pub epoch_marks: Vec<EpochMark>,
}

impl RankProfile {
    pub fn new(rank: u32) -> Self {
        RankProfile {
            rank,
            ..Default::default()
        }
    }

    /// Total profiled wall time: the span covered by epoch marks, or by
    /// events when no marks exist.
    pub fn span_ns(&self) -> u64 {
        let from_marks = self.epoch_marks.iter().map(|m| m.end_ns).max().unwrap_or(0);
        let from_events = self.events.iter().map(Event::end_ns).max().unwrap_or(0);
        from_marks.max(from_events)
    }

    /// Distinct kernel names in this profile.
    pub fn kernel_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.events.iter().map(|e| &*e.name).collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

/// All rank profiles of one measurement configuration and repetition
/// (`app.x4.r1` in Figure 2 before rank aggregation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigProfile {
    pub config: MeasurementConfig,
    /// Repetition index `r` of this measurement configuration (0-based).
    pub repetition: u32,
    pub meta: TrainingMeta,
    pub ranks: Vec<RankProfile>,
    /// Simulated/recorded wall-clock seconds spent *profiling* (measurement
    /// overhead), used by the Figure-8 overhead study.
    pub profiling_seconds: f64,
    /// Wall-clock seconds of application execution covered by the profile.
    pub execution_seconds: f64,
}

impl ConfigProfile {
    pub fn new(config: MeasurementConfig, repetition: u32, meta: TrainingMeta) -> Self {
        ConfigProfile {
            config,
            repetition,
            meta,
            ranks: Vec::new(),
            profiling_seconds: 0.0,
            execution_seconds: 0.0,
        }
    }

    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    pub fn total_events(&self) -> usize {
        self.ranks.iter().map(|r| r.events.len()).sum()
    }
}

/// A full experiment: profiles of all configurations and repetitions — the
/// empirical measurement base for modeling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ExperimentProfiles {
    pub profiles: Vec<ConfigProfile>,
}

impl ExperimentProfiles {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, profile: ConfigProfile) {
        self.profiles.push(profile);
    }

    /// Distinct measurement configurations, in insertion order.
    pub fn configs(&self) -> Vec<&MeasurementConfig> {
        let mut seen = Vec::new();
        for p in &self.profiles {
            if !seen.iter().any(|c: &&MeasurementConfig| **c == p.config) {
                seen.push(&p.config);
            }
        }
        seen
    }

    /// All repetitions of one configuration.
    pub fn repetitions_of(&self, config: &MeasurementConfig) -> Vec<&ConfigProfile> {
        self.profiles
            .iter()
            .filter(|p| &p.config == config)
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    pub fn len(&self) -> usize {
        self.profiles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::ApiDomain;
    use crate::marks::StepPhase;

    fn meta() -> TrainingMeta {
        TrainingMeta {
            batch_size: 256,
            train_samples: 50_000,
            val_samples: 10_000,
            data_parallel: 4,
            model_parallel: 1,
            cores_per_rank: 8,
        }
    }

    #[test]
    fn rank_profile_span_prefers_latest() {
        let mut rp = RankProfile::new(0);
        rp.events
            .push(Event::new("k", ApiDomain::CudaKernel, 10, 100));
        assert_eq!(rp.span_ns(), 110);
        rp.epoch_marks.push(EpochMark::new(0, 0, 500));
        assert_eq!(rp.span_ns(), 500);
    }

    #[test]
    fn kernel_names_dedup() {
        let mut rp = RankProfile::new(0);
        rp.events.push(Event::new("a", ApiDomain::CudaKernel, 0, 1));
        rp.events.push(Event::new("b", ApiDomain::Mpi, 1, 1));
        rp.events.push(Event::new("a", ApiDomain::CudaKernel, 2, 1));
        assert_eq!(rp.kernel_names(), vec!["a", "b"]);
    }

    #[test]
    fn experiment_groups_configs_and_reps() {
        let mut exp = ExperimentProfiles::new();
        for rep in 0..3 {
            exp.push(ConfigProfile::new(MeasurementConfig::ranks(4), rep, meta()));
        }
        exp.push(ConfigProfile::new(MeasurementConfig::ranks(8), 0, meta()));
        assert_eq!(exp.len(), 4);
        assert_eq!(exp.configs().len(), 2);
        assert_eq!(exp.repetitions_of(&MeasurementConfig::ranks(4)).len(), 3);
        assert_eq!(exp.repetitions_of(&MeasurementConfig::ranks(8)).len(), 1);
    }

    #[test]
    fn config_profile_counts() {
        let mut cp = ConfigProfile::new(MeasurementConfig::ranks(2), 0, meta());
        let mut r0 = RankProfile::new(0);
        r0.events.push(Event::new("k", ApiDomain::CudaKernel, 0, 1));
        r0.step_marks
            .push(StepMark::new(0, 0, StepPhase::Training, 0, 10));
        cp.ranks.push(r0);
        cp.ranks.push(RankProfile::new(1));
        assert_eq!(cp.num_ranks(), 2);
        assert_eq!(cp.total_events(), 1);
    }
}
