//! # extradeep-trace
//!
//! The profile/trace data model of the Extra-Deep reproduction: an
//! Nsight-Systems-like event representation with NVTX step and epoch marks.
//!
//! The paper's toolchain profiles instrumented applications with Nsight
//! Systems and reads the exported kernel events per MPI rank; this crate is
//! the Rust equivalent of that interchange layer. The simulator substrate
//! (`extradeep-sim`) produces these profiles, and the preprocessing stage
//! (`extradeep-agg`) consumes them.
//!
//! ```
//! use extradeep_trace::{ApiDomain, StepPhase, TraceBuilder};
//!
//! let mut b = TraceBuilder::new(0);
//! b.begin_epoch(0);
//! b.begin_step(0, 0, StepPhase::Training);
//! b.emit("EigenMetaKernel", ApiDomain::CudaKernel, 1_200_000);
//! b.emit_bytes("MPI_Allreduce", ApiDomain::Mpi, 800_000, 25 << 20);
//! b.end_step();
//! b.end_epoch();
//! let profile = b.finish();
//! assert_eq!(profile.events.len(), 2);
//! ```

pub mod builder;
pub mod calltree;
pub mod chrome;
pub mod config;
pub mod domain;
pub mod event;
pub mod import;
pub mod json;
pub mod marks;
pub mod profile;
pub mod repair;
pub mod summary;
pub mod timeline;
pub mod units;
pub mod validate;

pub use builder::TraceBuilder;
pub use calltree::{call_tree, render_call_tree, CallNode};
pub use chrome::{to_chrome_trace, to_chrome_trace_annotated};
pub use config::{MeasurementConfig, TrainingMeta};
pub use domain::{ApiDomain, KernelCategory};
pub use event::{Event, MetricKind};
pub use import::{export_csv, import_csv, ImportError};
pub use marks::{EpochMark, StepMark, StepPhase};
pub use profile::{ConfigProfile, ExperimentProfiles, RankProfile};
pub use repair::{
    repair_config, repair_experiment, QuarantineReason, RankRepair, RepairAction, RepairCounts,
    RepairReport,
};
pub use summary::{kernel_summary, render_summary, KernelSummary};
pub use timeline::{
    analyze_config, analyze_rank, annotations, ActivityClass, CriticalSegment, FlowPoint,
    InstantNote, KernelImbalance, RankActivity, RankExcess, SegmentKind, StepStat,
    TimelineAnalysis, TimelineAnnotations, SKEW_NOTE_THRESHOLD,
};
pub use validate::{validate_config, validate_rank, TraceIssue};
