//! Export to the Chrome trace-event format (`chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev)): every kernel event becomes a
//! complete ("X") event on its rank's track, step and epoch marks become
//! enclosing slices — a practical way to eyeball a simulated or imported
//! profile on a timeline.

use crate::json::TraceIoError;
use crate::profile::ConfigProfile;
use crate::timeline::TimelineAnnotations;
use serde::Serialize;

#[derive(Serialize)]
struct ChromeEvent<'a> {
    name: &'a str,
    cat: &'a str,
    ph: &'a str,
    /// Microseconds (the format's native unit).
    ts: f64,
    dur: f64,
    pid: u32,
    tid: u32,
}

/// Serializes one configuration profile to a Chrome trace-event JSON array.
///
/// Layout: one process per MPI rank (`pid` = rank); `tid` 0 carries the
/// epoch/step slices, `tid` 1 the kernel events. Timestamps are converted
/// from nanoseconds to microseconds.
pub fn to_chrome_trace(profile: &ConfigProfile) -> Result<String, TraceIoError> {
    let mut events: Vec<ChromeEvent> = Vec::new();
    let mut step_names: Vec<String> = Vec::new();
    // Pre-render step names (borrowed by the serializer below).
    for rank in &profile.ranks {
        for s in &rank.step_marks {
            step_names.push(format!("{} step e{}s{}", s.phase.label(), s.epoch, s.step));
        }
    }
    let mut name_idx = 0;
    for rank in &profile.ranks {
        for e in &rank.epoch_marks {
            events.push(ChromeEvent {
                name: "epoch",
                cat: "marks",
                ph: "X",
                ts: e.start_ns as f64 / 1e3,
                dur: e.duration_ns() as f64 / 1e3,
                pid: rank.rank,
                tid: 0,
            });
        }
        for s in &rank.step_marks {
            events.push(ChromeEvent {
                name: &step_names[name_idx],
                cat: "marks",
                ph: "X",
                ts: s.start_ns as f64 / 1e3,
                dur: s.duration_ns() as f64 / 1e3,
                pid: rank.rank,
                tid: 0,
            });
            name_idx += 1;
        }
        for ev in &rank.events {
            events.push(ChromeEvent {
                name: &ev.name,
                cat: ev.domain.label(),
                ph: "X",
                ts: ev.start_ns as f64 / 1e3,
                dur: (ev.duration_ns as f64 / 1e3).max(0.001),
                pid: rank.rank,
                tid: 1,
            });
        }
    }
    // Serialization of these plain structs should not fail, but a panic
    // deep in an export path is never the right failure mode — surface the
    // typed error instead (non-finite floats are the one realistic cause).
    Ok(serde_json::to_string(&events)?)
}

/// Serializes a profile like [`to_chrome_trace`], overlaid with the
/// observatory's annotations: instant events ("i") marking straggler step
/// windows and flow arrows ("s"/"f") chaining the cross-rank critical path
/// from segment to segment.
///
/// Instants land on the mark track (`tid` 0) of the straggler's rank; flow
/// endpoints bind to the kernel track (`tid` 1) of the segment's pacing
/// rank. Both render natively in Perfetto / `chrome://tracing`.
pub fn to_chrome_trace_annotated(
    profile: &ConfigProfile,
    annotations: &TimelineAnnotations,
) -> Result<String, TraceIoError> {
    // Splice the overlay into the serialized array directly: the base can
    // hold millions of events, the overlay a handful, so round-tripping the
    // whole trace through a JSON parse just to append would dominate.
    let mut out = to_chrome_trace(profile)?;
    out.pop();
    let mut sep = if out.ends_with('[') { "" } else { "," };
    for note in &annotations.instants {
        out.push_str(&format!(
            "{sep}{{\"name\":\"{}\",\"cat\":\"observatory\",\"ph\":\"i\",\"s\":\"p\",\
             \"ts\":{},\"pid\":{},\"tid\":0}}",
            escape(&note.name),
            note.t_ns as f64 / 1e3,
            note.rank,
        ));
        sep = ",";
    }
    for point in &annotations.flows {
        out.push_str(&format!(
            "{sep}{{\"name\":\"critical-path\",\"cat\":\"observatory\",\"id\":{},\
             \"ph\":\"{}\",\"bp\":\"e\",\"ts\":{},\"pid\":{},\"tid\":1}}",
            point.id,
            if point.begin { "s" } else { "f" },
            point.t_ns as f64 / 1e3,
            point.rank,
        ));
        sep = ",";
    }
    out.push(']');
    Ok(out)
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::config::{MeasurementConfig, TrainingMeta};
    use crate::domain::ApiDomain;
    use crate::marks::StepPhase;

    fn profile() -> ConfigProfile {
        let meta = TrainingMeta {
            batch_size: 1,
            train_samples: 1,
            val_samples: 0,
            data_parallel: 1,
            model_parallel: 1,
            cores_per_rank: 1,
        };
        let mut cp = ConfigProfile::new(MeasurementConfig::ranks(1), 0, meta);
        let mut b = TraceBuilder::new(0);
        b.begin_epoch(0);
        b.begin_step(0, 0, StepPhase::Training);
        b.emit("gemm", ApiDomain::CudaKernel, 2_000);
        b.end_step();
        b.end_epoch();
        cp.ranks.push(b.finish());
        cp
    }

    #[test]
    fn emits_valid_json_array() {
        let json = to_chrome_trace(&profile()).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        // 1 epoch + 1 step + 1 kernel.
        assert_eq!(arr.len(), 3);
        assert!(arr.iter().all(|e| e["ph"] == "X"));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let json = to_chrome_trace(&profile()).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let kernel = parsed
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["name"] == "gemm")
            .unwrap();
        assert_eq!(kernel["dur"].as_f64().unwrap(), 2.0);
        assert_eq!(kernel["tid"].as_u64().unwrap(), 1);
    }

    #[test]
    fn annotated_export_adds_instants_and_flows() {
        let p = profile();
        let mut ann = TimelineAnnotations::default();
        ann.instants.push(crate::timeline::InstantNote {
            rank: 0,
            t_ns: 500,
            name: "straggler r0 e0s0 (2.00x)".to_string(),
        });
        ann.flows.push(crate::timeline::FlowPoint {
            id: 0,
            rank: 0,
            t_ns: 100,
            begin: true,
        });
        ann.flows.push(crate::timeline::FlowPoint {
            id: 0,
            rank: 0,
            t_ns: 1500,
            begin: false,
        });
        let json = to_chrome_trace_annotated(&p, &ann).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        // 3 base events + 1 instant + 2 flow endpoints.
        assert_eq!(arr.len(), 6);
        let instant = arr.iter().find(|e| e["ph"] == "i").unwrap();
        assert_eq!(instant["cat"], "observatory");
        assert_eq!(instant["ts"].as_f64().unwrap(), 0.5);
        assert!(arr.iter().any(|e| e["ph"] == "s"));
        let finish = arr.iter().find(|e| e["ph"] == "f").unwrap();
        assert_eq!(finish["bp"], "e");
        assert_eq!(finish["id"], 0);
    }

    #[test]
    fn marks_live_on_track_zero() {
        let json = to_chrome_trace(&profile()).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let step = parsed
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["name"].as_str().unwrap().contains("training step"))
            .unwrap();
        assert_eq!(step["tid"].as_u64().unwrap(), 0);
    }
}
