//! Measurement configurations and training metadata.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A measurement point `P(x1, ..., xm)`: one unique configuration of the
/// application's execution parameters (paper §2.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementConfig {
    /// Ordered `(name, value)` pairs; order defines the coordinate order for
    /// modeling.
    pub parameters: Vec<(String, f64)>,
}

impl MeasurementConfig {
    pub fn new(parameters: Vec<(String, f64)>) -> Self {
        MeasurementConfig { parameters }
    }

    /// Single-parameter configuration, typically the number of MPI ranks.
    pub fn ranks(x1: u32) -> Self {
        MeasurementConfig {
            parameters: vec![("ranks".to_string(), x1 as f64)],
        }
    }

    pub fn value(&self, name: &str) -> Option<f64> {
        self.parameters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Coordinate vector in parameter order.
    pub fn coordinate(&self) -> Vec<f64> {
        self.parameters.iter().map(|&(_, v)| v).collect()
    }

    pub fn parameter_names(&self) -> Vec<String> {
        self.parameters.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Stable identifier like `app.x4` / `app.x4.b256` used in file names and
    /// reports (mirrors the paper's Figure 2 naming).
    pub fn id(&self) -> String {
        let mut s = String::from("app");
        for (name, value) in &self.parameters {
            let short = match name.as_str() {
                "ranks" => "x",
                "batch" | "batch_size" => "b",
                other => other,
            };
            if value.fract() == 0.0 {
                s.push_str(&format!(".{short}{}", *value as i64));
            } else {
                s.push_str(&format!(".{short}{value}"));
            }
        }
        s
    }
}

impl fmt::Display for MeasurementConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

/// Analytical training values the user supplies once per application
/// (paper §2.3.1): batch size per worker `B`, dataset sizes `D_t`/`D_v`,
/// degree of data parallelism `G`, degree of model parallelism `M`, and CPU
/// cores per rank `ϱ` for the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingMeta {
    /// Batch size per worker `B`.
    pub batch_size: u64,
    /// Samples in the training dataset `D_t` (after any weak-scaling growth).
    pub train_samples: u64,
    /// Samples in the validation dataset `D_v`.
    pub val_samples: u64,
    /// Degree of data parallelism `G`.
    pub data_parallel: u32,
    /// Degree of model parallelism `M`.
    pub model_parallel: u32,
    /// CPU cores used per MPI rank `ϱ` (cost model, paper Eq. 14).
    pub cores_per_rank: u32,
}

impl TrainingMeta {
    /// Number of training steps per epoch (paper Eq. 2):
    /// `n_t = ⌊(D_t / (G / M)) / B⌋`.
    ///
    /// Clamped to ≥ 1 when the shard is non-empty: a worker whose shard is
    /// smaller than the batch still executes one (partial) step per epoch.
    pub fn training_steps_per_epoch(&self) -> u64 {
        let n = steps(
            self.train_samples,
            self.data_parallel,
            self.model_parallel,
            self.batch_size,
        );
        if n == 0 && self.train_samples > 0 {
            1
        } else {
            n
        }
    }

    /// Number of validation steps per epoch (paper Eq. 3).
    pub fn validation_steps_per_epoch(&self) -> u64 {
        steps(
            self.val_samples,
            self.data_parallel,
            self.model_parallel,
            self.batch_size,
        )
    }
}

fn steps(samples: u64, g: u32, m: u32, batch: u64) -> u64 {
    assert!(
        g >= 1 && m >= 1 && batch >= 1,
        "degrees and batch must be >= 1"
    );
    let shard = samples as f64 / (g as f64 / m as f64);
    (shard / batch as f64).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_id_and_lookup() {
        let c = MeasurementConfig::ranks(4);
        assert_eq!(c.id(), "app.x4");
        assert_eq!(c.value("ranks"), Some(4.0));
        assert_eq!(c.value("batch"), None);
        assert_eq!(c.coordinate(), vec![4.0]);
    }

    #[test]
    fn multi_parameter_id() {
        let c = MeasurementConfig::new(vec![("ranks".into(), 8.0), ("batch".into(), 256.0)]);
        assert_eq!(c.id(), "app.x8.b256");
        assert_eq!(c.parameter_names(), vec!["ranks", "batch"]);
    }

    #[test]
    fn steps_match_paper_equations() {
        // CIFAR-10: 50k train / 10k val samples, B = 256, pure data
        // parallelism with G = 4, M = 1: n_t = floor((50000/4)/256) = 48.
        let meta = TrainingMeta {
            batch_size: 256,
            train_samples: 50_000,
            val_samples: 10_000,
            data_parallel: 4,
            model_parallel: 1,
            cores_per_rank: 8,
        };
        assert_eq!(meta.training_steps_per_epoch(), 48);
        assert_eq!(meta.validation_steps_per_epoch(), 9);
    }

    #[test]
    fn model_parallelism_scales_effective_workers() {
        // G/M workers process distinct data shards: with G = 8, M = 4 the
        // effective data-parallel width is 2.
        let meta = TrainingMeta {
            batch_size: 100,
            train_samples: 10_000,
            val_samples: 0,
            data_parallel: 8,
            model_parallel: 4,
            cores_per_rank: 1,
        };
        assert_eq!(meta.training_steps_per_epoch(), 50);
        assert_eq!(meta.validation_steps_per_epoch(), 0);
    }
}
