//! Per-kernel summary statistics over raw profiles — the equivalent of
//! `nsys stats --report gpukernsum`: how often each kernel ran, how much
//! time it consumed, and its share of the profiled span. Useful for eyeball
//! inspection of a trace before (or instead of) modeling.

use crate::domain::ApiDomain;
use crate::profile::{ConfigProfile, RankProfile};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary of one kernel within a profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSummary {
    pub name: String,
    pub domain: ApiDomain,
    /// Total executions (sums aggregated-row visit counts).
    pub visits: u64,
    pub total_seconds: f64,
    pub mean_seconds: f64,
    pub min_seconds: f64,
    pub max_seconds: f64,
    pub total_bytes: u64,
    /// Share of the summed kernel time, percent.
    pub time_share_percent: f64,
}

#[derive(Default)]
struct Accum {
    visits: u64,
    total_ns: f64,
    min_row_ns: f64,
    max_row_ns: f64,
    bytes: u64,
}

fn accumulate(rank: &RankProfile, map: &mut BTreeMap<(String, ApiDomain), Accum>) {
    for e in &rank.events {
        let key = (e.name.to_string(), e.domain);
        let acc = map.entry(key).or_insert_with(|| Accum {
            min_row_ns: f64::INFINITY,
            ..Default::default()
        });
        acc.visits += e.visits;
        acc.total_ns += e.duration_ns as f64;
        // Per-row mean execution time (rows may aggregate several visits).
        let per_visit = e.duration_ns as f64 / e.visits.max(1) as f64;
        acc.min_row_ns = acc.min_row_ns.min(per_visit);
        acc.max_row_ns = acc.max_row_ns.max(per_visit);
        acc.bytes += e.bytes.unwrap_or(0);
    }
}

/// Summarizes all kernels of a configuration profile, sorted by total time
/// descending.
pub fn kernel_summary(profile: &ConfigProfile) -> Vec<KernelSummary> {
    let mut map: BTreeMap<(String, ApiDomain), Accum> = BTreeMap::new();
    for rank in &profile.ranks {
        accumulate(rank, &mut map);
    }
    let grand_total: f64 = map.values().map(|a| a.total_ns).sum();
    let mut out: Vec<KernelSummary> = map
        .into_iter()
        .map(|((name, domain), acc)| KernelSummary {
            name,
            domain,
            visits: acc.visits,
            total_seconds: crate::units::ns_f64_to_secs(acc.total_ns),
            mean_seconds: crate::units::ns_f64_to_secs(acc.total_ns) / acc.visits.max(1) as f64,
            min_seconds: if acc.min_row_ns.is_finite() {
                crate::units::ns_f64_to_secs(acc.min_row_ns)
            } else {
                0.0
            },
            max_seconds: crate::units::ns_f64_to_secs(acc.max_row_ns),
            total_bytes: acc.bytes,
            time_share_percent: if grand_total > 0.0 {
                100.0 * acc.total_ns / grand_total
            } else {
                0.0
            },
        })
        .collect();
    out.sort_by(|a, b| b.total_seconds.total_cmp(&a.total_seconds));
    out
}

/// Renders the summary as an aligned text table (top `limit` kernels).
pub fn render_summary(profile: &ConfigProfile, limit: usize) -> String {
    let rows = kernel_summary(profile);
    let mut out = format!(
        "Kernel summary for {} (rep {}, {} ranks recorded)\n",
        profile.config.id(),
        profile.repetition,
        profile.num_ranks()
    );
    out.push_str(&format!(
        "{:<58} {:>10} {:>12} {:>10} {:>8}\n",
        "kernel", "visits", "total [ms]", "mean [us]", "share"
    ));
    for r in rows.iter().take(limit) {
        out.push_str(&format!(
            "{:<58} {:>10} {:>12.3} {:>10.2} {:>7.1}%\n",
            r.name,
            r.visits,
            r.total_seconds * 1e3,
            r.mean_seconds * 1e6,
            r.time_share_percent
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::config::{MeasurementConfig, TrainingMeta};
    use crate::marks::StepPhase;

    fn profile() -> ConfigProfile {
        let meta = TrainingMeta {
            batch_size: 1,
            train_samples: 1,
            val_samples: 0,
            data_parallel: 1,
            model_parallel: 1,
            cores_per_rank: 1,
        };
        let mut cp = ConfigProfile::new(MeasurementConfig::ranks(2), 0, meta);
        for rank in 0..2 {
            let mut b = TraceBuilder::new(rank);
            b.begin_epoch(0);
            b.begin_step(0, 0, StepPhase::Training);
            b.emit_aggregated("gemm", ApiDomain::CudaKernel, 8_000, 4, None);
            b.emit_bytes("memcpy", ApiDomain::MemCpy, 1_000, 4096);
            b.end_step();
            b.end_epoch();
            cp.ranks.push(b.finish());
        }
        cp
    }

    #[test]
    fn aggregates_across_ranks() {
        let s = kernel_summary(&profile());
        assert_eq!(s.len(), 2);
        let gemm = &s[0];
        assert_eq!(gemm.name, "gemm");
        assert_eq!(gemm.visits, 8); // 4 per rank x 2 ranks
        assert!((gemm.total_seconds - 16_000e-9).abs() < 1e-15);
        assert!((gemm.mean_seconds - 2_000e-9).abs() < 1e-15);
        let memcpy = &s[1];
        assert_eq!(memcpy.total_bytes, 8192);
    }

    #[test]
    fn shares_sum_to_100() {
        let s = kernel_summary(&profile());
        let total: f64 = s.iter().map(|k| k.time_share_percent).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sorted_by_total_time() {
        let s = kernel_summary(&profile());
        for w in s.windows(2) {
            assert!(w[0].total_seconds >= w[1].total_seconds);
        }
    }

    #[test]
    fn render_is_bounded_by_limit() {
        let text = render_summary(&profile(), 1);
        assert!(text.contains("gemm"));
        assert!(!text.contains("memcpy"));
    }

    #[test]
    fn empty_profile_renders() {
        let meta = profile().meta;
        let cp = ConfigProfile::new(MeasurementConfig::ranks(1), 0, meta);
        assert!(kernel_summary(&cp).is_empty());
        assert!(render_summary(&cp, 5).contains("Kernel summary"));
    }
}
