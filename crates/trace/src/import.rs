//! Import/export of profiles in a plain CSV interchange format.
//!
//! The paper's toolchain is profiler-agnostic: "Extra-Deep supports
//! measurements from other profiling tools such as Score-P, or any
//! CUPTI-based performance profiler" (§2.1). This module defines the textual
//! interchange format an exporter from such a tool would produce — one CSV
//! row per kernel event / NVTX mark, with `#`-prefixed header lines for the
//! configuration metadata — and a strict parser for it.
//!
//! ```text
//! # extradeep-trace-csv v1
//! # param: ranks=4
//! # meta: batch=256 train=50000 val=10000 G=4 M=1 cores=8
//! # repetition: 0
//! # execution_seconds: 12.5
//! # profiling_seconds: 0.66
//! kind,rank,epoch,step,phase,name,domain,start_ns,dur_ns,bytes,visits,path
//! epoch,0,0,,,,,0,90000000,,,
//! step,0,0,0,training,,,1000,400000,,,
//! event,0,,,,EigenMetaKernel,cuda_kernel,1200,350000,,12,train/forward
//! event,0,,,,MPI_Allreduce,mpi,361200,30000,1048576,1,train/exchange
//! ```

use crate::config::{MeasurementConfig, TrainingMeta};
use crate::domain::ApiDomain;
use crate::event::Event;
use crate::marks::{EpochMark, StepMark, StepPhase};
use crate::profile::{ConfigProfile, RankProfile};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised by the CSV importer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// The `# extradeep-trace-csv v1` magic line is missing or wrong.
    BadMagic,
    MissingHeader(&'static str),
    /// Malformed line, with its 1-based line number and a description.
    BadLine {
        line: usize,
        reason: String,
    },
    UnknownDomain {
        line: usize,
        domain: String,
    },
    UnknownPhase {
        line: usize,
        phase: String,
    },
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::BadMagic => write!(f, "missing '# extradeep-trace-csv v1' magic line"),
            ImportError::MissingHeader(h) => write!(f, "missing required header '{h}'"),
            ImportError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ImportError::UnknownDomain { line, domain } => {
                write!(f, "line {line}: unknown domain '{domain}'")
            }
            ImportError::UnknownPhase { line, phase } => {
                write!(f, "line {line}: unknown phase '{phase}'")
            }
        }
    }
}

impl std::error::Error for ImportError {}

fn domain_tag(domain: ApiDomain) -> &'static str {
    match domain {
        ApiDomain::CudaKernel => "cuda_kernel",
        ApiDomain::CudaApi => "cuda_api",
        ApiDomain::CuBlas => "cublas",
        ApiDomain::CuDnn => "cudnn",
        ApiDomain::Mpi => "mpi",
        ApiDomain::Nccl => "nccl",
        ApiDomain::Os => "os",
        ApiDomain::Nvtx => "nvtx",
        ApiDomain::MemCpy => "memcpy",
        ApiDomain::MemSet => "memset",
        ApiDomain::Io => "io",
    }
}

fn parse_domain(tag: &str, line: usize) -> Result<ApiDomain, ImportError> {
    ApiDomain::ALL
        .iter()
        .copied()
        .find(|&d| domain_tag(d) == tag)
        .ok_or_else(|| ImportError::UnknownDomain {
            line,
            domain: tag.to_string(),
        })
}

/// Exports one configuration profile to the CSV interchange format.
pub fn export_csv(profile: &ConfigProfile) -> String {
    let mut out = String::new();
    out.push_str("# extradeep-trace-csv v1\n");
    for (name, value) in &profile.config.parameters {
        out.push_str(&format!("# param: {name}={value}\n"));
    }
    let m = &profile.meta;
    out.push_str(&format!(
        "# meta: batch={} train={} val={} G={} M={} cores={}\n",
        m.batch_size,
        m.train_samples,
        m.val_samples,
        m.data_parallel,
        m.model_parallel,
        m.cores_per_rank
    ));
    out.push_str(&format!("# repetition: {}\n", profile.repetition));
    out.push_str(&format!(
        "# execution_seconds: {}\n",
        profile.execution_seconds
    ));
    out.push_str(&format!(
        "# profiling_seconds: {}\n",
        profile.profiling_seconds
    ));
    out.push_str("kind,rank,epoch,step,phase,name,domain,start_ns,dur_ns,bytes,visits,path\n");
    for rank in &profile.ranks {
        for e in &rank.epoch_marks {
            out.push_str(&format!(
                "epoch,{},{},,,,,{},{},,,\n",
                rank.rank,
                e.epoch,
                e.start_ns,
                e.duration_ns()
            ));
        }
        for s in &rank.step_marks {
            out.push_str(&format!(
                "step,{},{},{},{},,,{},{},,,\n",
                rank.rank,
                s.epoch,
                s.step,
                s.phase.label(),
                s.start_ns,
                s.duration_ns()
            ));
        }
        for ev in &rank.events {
            out.push_str(&format!(
                "event,{},,,,{},{},{},{},{},{},{}\n",
                rank.rank,
                ev.name,
                domain_tag(ev.domain),
                ev.start_ns,
                ev.duration_ns,
                ev.bytes.map(|b| b.to_string()).unwrap_or_default(),
                ev.visits,
                ev.call_path.as_deref().unwrap_or("")
            ));
        }
    }
    out
}

fn field<'a>(cols: &[&'a str], idx: usize, line: usize) -> Result<&'a str, ImportError> {
    cols.get(idx).copied().ok_or_else(|| ImportError::BadLine {
        line,
        reason: format!("expected at least {} columns", idx + 1),
    })
}

fn parse_u64(s: &str, what: &str, line: usize) -> Result<u64, ImportError> {
    s.parse().map_err(|_| ImportError::BadLine {
        line,
        reason: format!("invalid {what} '{s}'"),
    })
}

/// Imports one configuration profile from the CSV interchange format.
pub fn import_csv(text: &str) -> Result<ConfigProfile, ImportError> {
    let mut lines = text.lines().enumerate().peekable();

    // Magic.
    match lines.next() {
        Some((_, l)) if l.trim() == "# extradeep-trace-csv v1" => {}
        _ => return Err(ImportError::BadMagic),
    }

    // Headers.
    let mut params: Vec<(String, f64)> = Vec::new();
    let mut meta: Option<TrainingMeta> = None;
    let mut repetition = 0u32;
    let mut execution_seconds = 0.0f64;
    let mut profiling_seconds = 0.0f64;
    while let Some(&(lineno, l)) = lines.peek() {
        let Some(rest) = l.strip_prefix('#') else {
            break;
        };
        lines.next();
        let rest = rest.trim();
        if let Some(p) = rest.strip_prefix("param:") {
            let p = p.trim();
            let (name, value) = p.split_once('=').ok_or_else(|| ImportError::BadLine {
                line: lineno + 1,
                reason: "param header must be name=value".to_string(),
            })?;
            let v: f64 = value.parse().map_err(|_| ImportError::BadLine {
                line: lineno + 1,
                reason: format!("invalid param value '{value}'"),
            })?;
            params.push((name.to_string(), v));
        } else if let Some(mline) = rest.strip_prefix("meta:") {
            let mut kv = BTreeMap::new();
            for pair in mline.split_whitespace() {
                if let Some((k, v)) = pair.split_once('=') {
                    let v: u64 = v.parse().map_err(|_| ImportError::BadLine {
                        line: lineno + 1,
                        reason: format!("invalid meta value '{v}'"),
                    })?;
                    kv.insert(k.to_string(), v);
                }
            }
            let need = |k: &'static str| -> Result<u64, ImportError> {
                kv.get(k).copied().ok_or(ImportError::MissingHeader(k))
            };
            meta = Some(TrainingMeta {
                batch_size: need("batch")?,
                train_samples: need("train")?,
                val_samples: need("val")?,
                data_parallel: need("G")? as u32,
                model_parallel: need("M")? as u32,
                cores_per_rank: need("cores")? as u32,
            });
        } else if let Some(r) = rest.strip_prefix("repetition:") {
            repetition = r.trim().parse().unwrap_or(0);
        } else if let Some(r) = rest.strip_prefix("execution_seconds:") {
            execution_seconds = r.trim().parse().unwrap_or(0.0);
        } else if let Some(r) = rest.strip_prefix("profiling_seconds:") {
            profiling_seconds = r.trim().parse().unwrap_or(0.0);
        }
        // Unknown '#' headers are ignored (forward compatibility).
    }

    let meta = meta.ok_or(ImportError::MissingHeader("meta"))?;
    if params.is_empty() {
        return Err(ImportError::MissingHeader("param"));
    }

    // Column header row.
    match lines.next() {
        Some((_, l)) if l.starts_with("kind,") => {}
        Some((n, _)) => {
            return Err(ImportError::BadLine {
                line: n + 1,
                reason: "expected the 'kind,...' column header".to_string(),
            })
        }
        None => {
            return Err(ImportError::BadLine {
                line: 0,
                reason: "unexpected end of file before column header".to_string(),
            })
        }
    }

    let mut ranks: BTreeMap<u32, RankProfile> = BTreeMap::new();
    for (idx, l) in lines {
        let lineno = idx + 1;
        if l.trim().is_empty() || l.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = l.split(',').collect();
        let kind = field(&cols, 0, lineno)?;
        let rank_id: u32 = parse_u64(field(&cols, 1, lineno)?, "rank", lineno)? as u32;
        let rank = ranks
            .entry(rank_id)
            .or_insert_with(|| RankProfile::new(rank_id));
        match kind {
            "epoch" => {
                let epoch = parse_u64(field(&cols, 2, lineno)?, "epoch", lineno)? as u32;
                let start = parse_u64(field(&cols, 7, lineno)?, "start_ns", lineno)?;
                let dur = parse_u64(field(&cols, 8, lineno)?, "dur_ns", lineno)?;
                rank.epoch_marks
                    .push(EpochMark::new(epoch, start, start + dur));
            }
            "step" => {
                let epoch = parse_u64(field(&cols, 2, lineno)?, "epoch", lineno)? as u32;
                let step = parse_u64(field(&cols, 3, lineno)?, "step", lineno)? as u32;
                let phase = match field(&cols, 4, lineno)? {
                    "training" => StepPhase::Training,
                    "validation" => StepPhase::Validation,
                    other => {
                        return Err(ImportError::UnknownPhase {
                            line: lineno,
                            phase: other.to_string(),
                        })
                    }
                };
                let start = parse_u64(field(&cols, 7, lineno)?, "start_ns", lineno)?;
                let dur = parse_u64(field(&cols, 8, lineno)?, "dur_ns", lineno)?;
                rank.step_marks
                    .push(StepMark::new(epoch, step, phase, start, start + dur));
            }
            "event" => {
                let name = field(&cols, 5, lineno)?;
                if name.is_empty() {
                    return Err(ImportError::BadLine {
                        line: lineno,
                        reason: "event with empty name".to_string(),
                    });
                }
                let domain = parse_domain(field(&cols, 6, lineno)?, lineno)?;
                let start = parse_u64(field(&cols, 7, lineno)?, "start_ns", lineno)?;
                let dur = parse_u64(field(&cols, 8, lineno)?, "dur_ns", lineno)?;
                let mut event = Event::new(name.to_string(), domain, start, dur);
                let bytes = field(&cols, 9, lineno)?;
                if !bytes.is_empty() {
                    event = event.with_bytes(parse_u64(bytes, "bytes", lineno)?);
                }
                let visits = field(&cols, 10, lineno)?;
                if !visits.is_empty() {
                    event = event.with_visits(parse_u64(visits, "visits", lineno)?);
                }
                // Optional 12th column (absent in v1 exports without paths).
                if let Some(path) = cols.get(11) {
                    if !path.is_empty() {
                        event = event.with_call_path(path.to_string());
                    }
                }
                rank.events.push(event);
            }
            other => {
                return Err(ImportError::BadLine {
                    line: lineno,
                    reason: format!("unknown record kind '{other}'"),
                })
            }
        }
    }

    let mut profile = ConfigProfile::new(MeasurementConfig::new(params), repetition, meta);
    profile.execution_seconds = execution_seconds;
    profile.profiling_seconds = profiling_seconds;
    profile.ranks = ranks.into_values().collect();
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn sample_profile() -> ConfigProfile {
        let meta = TrainingMeta {
            batch_size: 256,
            train_samples: 50_000,
            val_samples: 10_000,
            data_parallel: 4,
            model_parallel: 1,
            cores_per_rank: 8,
        };
        let mut cp = ConfigProfile::new(MeasurementConfig::ranks(4), 2, meta);
        cp.execution_seconds = 3.25;
        cp.profiling_seconds = 0.175;
        for rank in 0..2 {
            let mut b = TraceBuilder::new(rank);
            b.begin_epoch(0);
            b.begin_step(0, 0, StepPhase::Training);
            b.emit("EigenMetaKernel", ApiDomain::CudaKernel, 1_000);
            b.emit_bytes("MPI_Allreduce", ApiDomain::Mpi, 500, 1 << 20);
            b.end_step();
            b.begin_step(0, 0, StepPhase::Validation);
            b.emit("EigenMetaKernel", ApiDomain::CudaKernel, 400);
            b.end_step();
            b.end_epoch();
            cp.ranks.push(b.finish());
        }
        cp
    }

    #[test]
    fn csv_roundtrip_preserves_profile() {
        let profile = sample_profile();
        let csv = export_csv(&profile);
        let back = import_csv(&csv).unwrap();
        assert_eq!(profile, back);
    }

    #[test]
    fn missing_magic_is_rejected() {
        assert_eq!(import_csv("kind,rank\n"), Err(ImportError::BadMagic));
    }

    #[test]
    fn missing_meta_is_rejected() {
        let csv = "# extradeep-trace-csv v1\n# param: ranks=4\nkind,rank,epoch,step,phase,name,domain,start_ns,dur_ns,bytes,visits\n";
        assert_eq!(import_csv(csv), Err(ImportError::MissingHeader("meta")));
    }

    #[test]
    fn unknown_domain_reports_line() {
        let csv = "# extradeep-trace-csv v1\n\
                   # param: ranks=2\n\
                   # meta: batch=1 train=10 val=0 G=2 M=1 cores=1\n\
                   kind,rank,epoch,step,phase,name,domain,start_ns,dur_ns,bytes,visits\n\
                   event,0,,,,k,warp_drive,0,1,,1\n";
        match import_csv(csv) {
            Err(ImportError::UnknownDomain { line, domain }) => {
                assert_eq!(line, 5);
                assert_eq!(domain, "warp_drive");
            }
            other => panic!("expected UnknownDomain, got {other:?}"),
        }
    }

    #[test]
    fn malformed_numbers_report_line() {
        let csv = "# extradeep-trace-csv v1\n\
                   # param: ranks=2\n\
                   # meta: batch=1 train=10 val=0 G=2 M=1 cores=1\n\
                   kind,rank,epoch,step,phase,name,domain,start_ns,dur_ns,bytes,visits\n\
                   event,0,,,,k,mpi,zero,1,,1\n";
        assert!(matches!(
            import_csv(csv),
            Err(ImportError::BadLine { line: 5, .. })
        ));
    }

    #[test]
    fn unknown_headers_are_ignored() {
        let csv = "# extradeep-trace-csv v1\n\
                   # exporter: nsys-to-extradeep 0.3\n\
                   # param: ranks=2\n\
                   # meta: batch=1 train=10 val=0 G=2 M=1 cores=1\n\
                   kind,rank,epoch,step,phase,name,domain,start_ns,dur_ns,bytes,visits\n\
                   event,0,,,,k,os,0,5,,1\n";
        let p = import_csv(csv).unwrap();
        assert_eq!(p.ranks.len(), 1);
        assert_eq!(p.ranks[0].events.len(), 1);
    }

    #[test]
    fn all_domains_roundtrip_their_tags() {
        for d in ApiDomain::ALL {
            assert_eq!(parse_domain(domain_tag(d), 1).unwrap(), d);
        }
    }

    #[test]
    fn imported_profile_feeds_the_pipeline() {
        // The imported profile must be structurally valid for aggregation.
        let profile = import_csv(&export_csv(&sample_profile())).unwrap();
        let issues = crate::validate::validate_config(&profile);
        assert!(issues.is_empty(), "{issues:?}");
    }
}
