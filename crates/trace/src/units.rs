//! The one place in the workspace allowed to spell out ns<->s conversion
//! constants.
//!
//! Ad-hoc `* 1e9` / `* 1e-9` conversions drift apart one call site at a
//! time (some round, some truncate, some clamp); the `raw-duration-arith`
//! lint in `extradeep-analyze` routes every conversion through here.

/// Nanoseconds per second, as `f64` for conversion arithmetic.
pub const NANOS_PER_SEC: f64 = 1e9;

/// Converts an integer nanosecond duration to seconds.
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 / NANOS_PER_SEC
}

/// Converts an already-float nanosecond quantity (sums and means of
/// durations) to seconds.
pub fn ns_f64_to_secs(ns: f64) -> f64 {
    ns / NANOS_PER_SEC
}

/// Converts seconds to integer nanoseconds, rounding to nearest. Negative
/// and NaN inputs saturate to zero — durations cannot be negative.
pub fn secs_to_ns(secs: f64) -> u64 {
    (secs * NANOS_PER_SEC).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_nanosecond_counts() {
        for ns in [0u64, 1, 999, 1_000_000_000, 123_456_789_012] {
            assert_eq!(secs_to_ns(ns_to_secs(ns)), ns);
        }
    }

    #[test]
    fn secs_to_ns_rounds_to_nearest() {
        assert_eq!(secs_to_ns(1.4e-9), 1);
        assert_eq!(secs_to_ns(1.6e-9), 2);
        assert_eq!(secs_to_ns(0.25), 250_000_000);
    }

    #[test]
    fn pathological_inputs_saturate_to_zero() {
        assert_eq!(secs_to_ns(-1.0), 0);
        assert_eq!(secs_to_ns(f64::NAN), 0);
        assert_eq!(secs_to_ns(f64::NEG_INFINITY), 0);
    }

    #[test]
    fn float_ns_sums_convert() {
        assert!((ns_f64_to_secs(2.5e9) - 2.5).abs() < 1e-12);
    }
}
