//! Change-point detection demo (paper §4.3): "communication algorithms and
//! performed memory techniques might change depending on the application
//! scale. Therefore, a clear expectation of the model's target scale helps
//! to identify the correct application configurations for profiling."
//!
//! We simulate a cluster whose MPI library falls back to a slower allreduce
//! algorithm beyond 16 nodes, measure across the switch, and let the
//! segmented modeler localize the behavioral change.
//!
//! ```sh
//! cargo run --release --example algorithm_switch
//! ```

use extradeep::prelude::*;
use extradeep_agg::AppCategory;
use extradeep_model::{detect_change_point, SegmentationOptions};

fn main() {
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 8, 12, 16, 24, 32, 48, 64]);
    spec.system.interconnect.algorithm_switch_nodes = Some(16);
    spec.repetitions = 3;

    println!("Simulating a cluster whose MPI allreduce switches algorithms beyond 16 nodes...\n");
    let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
    let comm = agg.app_dataset(MetricKind::Time, Some(AppCategory::Communication));

    println!("Measured communication time per epoch:");
    for m in &comm.measurements {
        println!("  {:>3.0} ranks: {:>8.2} s", m.coordinate[0], m.median());
    }

    match detect_change_point(&comm, &SegmentationOptions::default()).unwrap() {
        Some(seg) => {
            println!("\n⚠ Behavioral change detected at ~{} ranks!", seg.split_at);
            println!("  below: {}  [{}]", seg.left.formatted(), seg.left.big_o());
            println!(
                "  above: {}  [{}]",
                seg.right.formatted(),
                seg.right.big_o()
            );
            println!(
                "  one PMNF model fits at {:.1}% SMAPE; the segmented pair at {:.1}% \
                 ({:.0}% better)",
                seg.single_smape,
                seg.segmented_smape,
                100.0 * seg.improvement()
            );
            println!(
                "\nRecommendation (per the paper): place the modeling points on the \
                 side of the switch\nthat matches your target scale — models fitted \
                 across the change cannot extrapolate."
            );
        }
        None => println!("\nNo change point found — one model explains the data."),
    }
}
