//! The paper's CIFAR-10 case study (§2-3) as a runnable walkthrough:
//! answers questions Q1-Q5 from §1.1 with the created models.
//!
//! ```sh
//! cargo run --release --example case_study_cifar10
//! ```

use extradeep::prelude::*;
use extradeep::{efficiency_series, rank_by_growth, speedup_series};

fn main() {
    println!("Extra-Deep case study: ResNet-50 on CIFAR-10, DEEP system,");
    println!("data parallelism, weak scaling, batch size 256 per rank.\n");

    // The case study's modeling points P(x1) with x1 = {2, 4, 6, 10, 12}
    // and five repetitions (§2.3).
    let spec = ExperimentSpec::case_study(vec![2, 4, 6, 10, 12]);
    let profiles = spec.run();
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap();

    println!(
        "Epoch-time model:  T_epoch(x1) = {}",
        models.app.epoch.formatted()
    );
    println!(
        "Comm-time model:   T_comm(x1)  = {}",
        models.app.communication.formatted()
    );

    // --- Q1: training time per epoch for a given allocation. -------------
    let t40 = questions::q1_epoch_seconds(&models, 40.0);
    println!("\nQ1. Training time per epoch at 40 MPI ranks: {t40:.2} s");
    println!("    (paper's model predicts 352.37 s for its measured cluster)");

    // --- Q2: how performance changes with the configuration. -------------
    let xs = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    println!("\nQ2. Scaling behavior (weak scaling, ideal would be flat):");
    for (x, t) in xs.iter().map(|&x| (x, models.app.epoch.predict_at(x))) {
        println!("    {x:>4.0} ranks: {t:8.1} s/epoch");
    }
    let speedups = speedup_series(&models.app.epoch, &xs);
    println!(
        "    Speedup at 64 ranks vs 2: {:+.1}% (negative = overhead grows)",
        speedups.last().unwrap().1
    );

    // --- Q3: latent bottlenecks. ------------------------------------------
    let q3 = questions::q3_bottlenecks(&models, 64.0);
    println!("\nQ3. Bottleneck analysis at 64 ranks:");
    println!(
        "    communication: {:.1} s of {:.1} s per epoch ({:.1}%)",
        q3.communication_seconds, q3.epoch_seconds, q3.communication_share_percent
    );
    println!("    Top kernels by growth trend:");
    for r in rank_by_growth(&models, 64.0).iter().take(5) {
        println!(
            "      {:<55} {:<28} {:5.1}% of epoch",
            r.id.name, r.growth, r.share_percent
        );
    }

    // --- Q4: cost per epoch. ----------------------------------------------
    let cost = CostModel::new(8);
    let c32 = questions::q4_epoch_core_hours(&models, &cost, 32.0);
    println!("\nQ4. Cost per epoch at 32 ranks: {c32:.2} core-hours");
    println!("    (paper's cost model gives 22.49 core-hours)");

    // --- Q5: most cost-effective configuration. ---------------------------
    let search = questions::q5_cost_effective(
        &models,
        &cost,
        &xs,
        Constraints::default(),
        ScalingMode::Weak,
    );
    println!(
        "\nQ5. Most cost-effective configuration (weak scaling): {} ranks",
        search.best.map(|b| b.ranks).unwrap_or(f64::NAN)
    );
    println!("    (weak scaling: the smallest allocation always wins — paper §3.3)");

    let eff = efficiency_series(&models.app.epoch, &xs);
    println!("\nParallel efficiency by scale:");
    for (x, e) in eff {
        println!("    {x:>4.0} ranks: {e:7.1}%");
    }
}
