//! Quickstart: model the training time of a distributed DL application from
//! five cheap, small-scale measurements, then predict larger scales.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use extradeep::prelude::*;

fn main() {
    // 1. Measure: profile ResNet-50/CIFAR-10 (data parallel, weak scaling)
    //    at five small rank counts on the simulated DEEP system, using the
    //    efficient sampling strategy (5 steps of 2 epochs).
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
    spec.repetitions = 3;
    let profiles = spec.run();
    println!(
        "Profiled {} measurement runs ({} configurations)",
        profiles.len(),
        profiles.configs().len()
    );

    // 2. Preprocess: step-window extraction, median aggregation, kernel
    //    filtering, derived per-epoch metrics.
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());

    // 3. Model: PMNF hypothesis search per kernel and per application phase.
    let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default())
        .expect("modeling succeeds");
    println!(
        "Created {} kernel models + 4 application models",
        models.kernels.len()
    );
    println!("\nT_epoch(ranks) = {}", models.app.epoch.formatted());
    println!("Dominant growth: {}", models.app.epoch.big_o());

    // 4. Predict (Q1): training time per epoch at unmeasured scales.
    for ranks in [16.0, 32.0, 64.0] {
        println!(
            "Predicted training time per epoch at {:>2} ranks: {:7.1} s",
            ranks,
            models.app.epoch.predict_at(ranks)
        );
    }

    // 5. Analyze: cost (Q4) and the most cost-effective configuration (Q5).
    let cost = CostModel::new(8);
    println!(
        "\nPredicted cost per epoch at 32 ranks: {:.2} core-hours",
        cost.epoch_core_hours(&models.app.epoch, 32.0)
    );
    let search = questions::q5_cost_effective(
        &models,
        &cost,
        &[2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
        Constraints::default(),
        ScalingMode::Weak,
    );
    if let Some(best) = search.best {
        println!(
            "Most cost-effective configuration: {} ranks ({:.1} s/epoch, {:.2} core-hours)",
            best.ranks, best.seconds, best.core_hours
        );
    }
}
