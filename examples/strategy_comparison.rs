//! Compares the three parallel strategies of the paper's evaluation (data,
//! tensor, and pipeline parallelism) on the simulated JURECA system:
//! who is fastest per epoch at which scale, and how the communication
//! profile differs.
//!
//! ```sh
//! cargo run --release --example strategy_comparison
//! ```

use extradeep::prelude::*;

fn model_epoch(strategy: ParallelStrategy, ranks: Vec<u32>) -> Option<extradeep::ModelSet> {
    let mut spec = ExperimentSpec::case_study(ranks);
    spec.system = SystemConfig::jureca();
    spec.benchmark = Benchmark::cifar100();
    spec.strategy = strategy;
    spec.repetitions = 3;
    spec.profiler.max_recorded_ranks = 4;
    let profiles = spec.run();
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).ok()
}

fn main() {
    // The paper's JURECA configuration: four GPUs (ranks) per node, so node
    // counts {2,...,10} are rank counts {8,...,40}; M = 4 for the hybrids.
    let modeling_ranks = vec![8, 16, 24, 32, 40];
    let strategies = [
        ParallelStrategy::DataParallel,
        ParallelStrategy::TensorParallel { group: 4 },
        ParallelStrategy::PipelineParallel {
            stages: 4,
            microbatches: 8,
        },
    ];

    println!("CIFAR-100 / ResNet-50 on JURECA (weak scaling), epoch-time models:\n");
    let mut models = Vec::new();
    for &s in &strategies {
        match model_epoch(s, modeling_ranks.clone()) {
            Some(set) => {
                println!("{:<22} T_epoch = {}", s.label(), set.app.epoch.formatted());
                models.push((s, set));
            }
            None => println!("{:<22} (modeling failed)", s.label()),
        }
    }

    println!("\nPredicted training time per epoch [s]:");
    println!(
        "{:<8} {:>14} {:>14} {:>14}",
        "nodes", "data", "tensor", "pipeline"
    );
    for nodes in [2u32, 4, 8, 16, 32, 64] {
        let ranks = (nodes * 4) as f64;
        print!("{nodes:<8}");
        for (_, set) in &models {
            print!(" {:>14.1}", set.app.epoch.predict_at(ranks));
        }
        println!();
    }

    println!("\nCommunication share of the epoch at 64 nodes:");
    for (s, set) in &models {
        let ranks = 256.0;
        let comm = set.app.communication.predict_at(ranks).max(0.0);
        let epoch = set.app.epoch.predict_at(ranks);
        println!(
            "  {:<22} {:6.1}% ({:.1} s of {:.1} s)",
            s.label(),
            100.0 * comm / epoch,
            comm,
            epoch
        );
    }

    println!(
        "\nNote: hybrid strategies trade extra intra-group communication \
         (allgather/alltoall, pipeline sends + bubble) for smaller per-rank \
         models — the paper finds them harder to predict for the same reason."
    );
}
