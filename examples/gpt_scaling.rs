//! Extension workload: performance modeling of a GPT-style Transformer
//! (the paper's introduction motivates Extra-Deep with exactly this model
//! class — "GPT-3 ... requiring hundreds of GPUs and several days").
//!
//! ```sh
//! cargo run --release --example gpt_scaling
//! ```

use extradeep::prelude::*;

fn main() {
    let gpt = Benchmark::gpt_small();
    println!(
        "Workload: {} on {} ({} M parameters, {:.1} GFLOPs/sample forward)\n",
        gpt.architecture.name,
        gpt.dataset.name,
        gpt.architecture.params() / 1_000_000,
        gpt.architecture.forward_flops_per_sample() as f64 / 1e9,
    );

    // Tensor parallelism on JURECA: groups of 4 A100s share one model
    // instance, data parallelism between the groups.
    let mut spec = ExperimentSpec::case_study(vec![8, 16, 24, 32, 40]);
    spec.system = SystemConfig::jureca();
    spec.benchmark = gpt;
    spec.strategy = ParallelStrategy::TensorParallel { group: 4 };
    spec.repetitions = 3;
    spec.profiler.max_recorded_ranks = 4;

    let profiles = spec.run();
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap();

    println!("T_epoch(ranks)  = {}", models.app.epoch.formatted());
    println!("T_comm(ranks)   = {}", models.app.communication.formatted());

    println!("\nPredicted GPT training time per epoch (weak scaling):");
    for ranks in [8u32, 32, 128, 256] {
        let t = models.app.epoch.predict_at(ranks as f64);
        println!(
            "  {ranks:>4} GPUs: {:>9.1} s/epoch  (~{:.1} h for 50 epochs)",
            t,
            t * 50.0 / 3600.0
        );
    }

    let cost = CostModel::new(SystemConfig::jureca().cores_per_rank).with_price(0.02);
    println!(
        "\nCost per epoch at 128 GPUs: {:.1} core-hours (~${:.2})",
        cost.epoch_core_hours(&models.app.epoch, 128.0),
        cost.epoch_price(&models.app.epoch, 128.0).unwrap()
    );

    let q3 = extradeep::questions::q3_bottlenecks(&models, 128.0);
    println!(
        "Communication share at 128 GPUs: {:.1}% — the tensor-parallel \
         allgathers dominate as the paper's hybrid-strategy discussion predicts.",
        q3.communication_share_percent
    );
}
