//! Cost-effective training-configuration planning under a budget and a
//! deadline (paper §3.3 / Fig. 4b): strong scaling, where feasibility is a
//! real intersection between "fast enough" and "cheap enough".
//!
//! ```sh
//! cargo run --release --example cost_planner
//! ```

use extradeep::prelude::*;
use extradeep::{efficiency_series, find_cost_effective};

fn main() {
    // Model ImageNet/EfficientNet-B0 under strong scaling on JURECA: the
    // dataset is fixed, so more GPUs genuinely shorten the epoch.
    let mut spec = ExperimentSpec::case_study(vec![8, 16, 24, 32, 40]);
    spec.system = SystemConfig::jureca();
    spec.benchmark = Benchmark::imagenet();
    spec.scaling = ScalingMode::Strong;
    spec.repetitions = 3;
    spec.profiler.max_recorded_ranks = 4;

    let profiles = spec.run();
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    let models =
        build_model_set(&agg, MetricKind::Time, &ModelSetOptions::strong_scaling()).unwrap();
    let runtime = &models.app.epoch;
    println!("Strong-scaling epoch-time model: {}\n", runtime.formatted());

    let cost = CostModel::new(SystemConfig::jureca().cores_per_rank).with_price(0.02);
    let candidates: Vec<f64> = [16u32, 32, 48, 64, 96, 128, 160, 192, 224, 256]
        .iter()
        .map(|&r| r as f64)
        .collect();

    // The planner's constraints: finish an epoch within a deadline, spend at
    // most a given number of core-hours per epoch.
    let deadline_s = runtime.predict_at(64.0); // "as fast as 64 GPUs"
    let budget_ch = cost.epoch_core_hours(runtime, 160.0); // "at most the 160-GPU bill"
    println!("Deadline: {deadline_s:.0} s/epoch   Budget: {budget_ch:.1} core-hours/epoch\n");

    let result = find_cost_effective(
        runtime,
        &cost,
        &candidates,
        Constraints {
            max_seconds: Some(deadline_s),
            max_core_hours: Some(budget_ch),
        },
        ScalingMode::Strong,
    );

    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>10}",
        "GPUs", "time [s]", "core-hours", "price [$]", "feasible"
    );
    for c in &result.candidates {
        let price = cost.price_per_core_hour.unwrap() * c.core_hours;
        println!(
            "{:>6.0} {:>12.1} {:>14.2} {:>12.2} {:>10}",
            c.ranks,
            c.seconds,
            c.core_hours,
            price,
            if c.feasible { "yes" } else { "no" }
        );
    }

    match result.best {
        Some(best) => println!(
            "\nRecommended: {} GPUs — {:.0} s/epoch at {:.1} core-hours \
             (highest parallel efficiency in the feasible window)",
            best.ranks, best.seconds, best.core_hours
        ),
        None => println!("\nNo configuration satisfies both constraints."),
    }

    println!("\nParallel efficiency across the candidate range:");
    for (x, e) in efficiency_series(runtime, &candidates) {
        println!("  {x:>6.0} GPUs: {e:6.1}%");
    }
}
