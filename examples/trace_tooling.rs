//! Tour of the trace tooling around the modeling pipeline: simulate a
//! profile, inspect its kernel summary and NVTX call tree, round-trip it
//! through the profiler-agnostic CSV format, and export a Perfetto timeline.
//!
//! ```sh
//! cargo run --release --example trace_tooling
//! ```

use extradeep::prelude::*;
use extradeep_trace::{export_csv, import_csv, render_call_tree, render_summary, to_chrome_trace};

fn main() {
    let mut spec = ExperimentSpec::case_study(vec![4]);
    spec.repetitions = 1;
    spec.profiler.max_recorded_ranks = 2;
    let profiles = spec.run();
    let profile = &profiles.profiles[0];

    // 1. Per-kernel summary (the `nsys stats` view).
    println!("{}", render_summary(profile, 10));

    // 2. The NVTX call tree (paper Fig. 1: "Calltree: kernel models").
    println!("{}", render_call_tree(profile, 2));

    // 3. Round-trip through the profiler-agnostic CSV interchange format.
    let csv = export_csv(profile);
    let reimported = import_csv(&csv).expect("CSV round-trip");
    assert_eq!(*profile, reimported);
    println!(
        "CSV round-trip: {} lines, identical after re-import ✓",
        csv.lines().count()
    );

    // 4. Perfetto / chrome://tracing timeline export.
    let chrome = to_chrome_trace(profile).expect("chrome export");
    let out = std::env::temp_dir().join("extradeep_timeline.json");
    std::fs::write(&out, &chrome).unwrap();
    println!(
        "Perfetto timeline with {} events written to {} (open in ui.perfetto.dev)",
        chrome.matches("\"ph\"").count(),
        out.display()
    );
}
