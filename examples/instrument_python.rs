//! Demonstrates Extra-Deep's automated NVTX instrumentation (paper §2.1
//! step 1): static analysis of a Python training script, decorator and
//! step/epoch mark injection.
//!
//! ```sh
//! cargo run --release --example instrument_python
//! ```

use extradeep_instrument::{instrument_source, InstrumentOptions};

const TRAINING_SCRIPT: &str = r#"import tensorflow as tf
import horovod.tensorflow as hvd


class Trainer:
    def __init__(self, model, dataset):
        self.model = model
        self.dataset = dataset

    @tf.function
    def training_step(self, images, labels, first_batch):
        with tf.GradientTape() as tape:
            probs = self.model(images, training=True)
            loss_value = loss(labels, probs)
        tape = hvd.DistributedGradientTape(tape)
        grads = tape.gradient(loss_value, self.model.trainable_variables)
        opt.apply_gradients(zip(grads, self.model.trainable_variables))
        return loss_value

    def validation_step(self, images, labels):
        probs = self.model(images, training=False)
        return accuracy(labels, probs)

    def train(self, epochs, steps):
        for epoch in range(epochs):
            for batch, (images, labels) in enumerate(self.dataset.take(steps)):
                loss_value = self.training_step(images, labels, batch == 0)
            self.on_epoch_end(epoch)

    def on_epoch_end(self, epoch):
        checkpoint.save(epoch)
"#;

fn main() {
    let result = instrument_source(TRAINING_SCRIPT, &InstrumentOptions::default());

    println!("--- instrumented source ---------------------------------------");
    println!("{}", result.source);
    println!("--- summary ----------------------------------------------------");
    println!("annotated functions:   {:?}", result.annotated);
    println!("step/epoch callbacks:  {:?}", result.marked_callbacks);
    println!("already instrumented:  {:?}", result.skipped_existing);

    // Idempotency check: instrumenting the output changes nothing.
    let again = instrument_source(&result.source, &InstrumentOptions::default());
    assert_eq!(
        again.source, result.source,
        "instrumentation must be idempotent"
    );
    println!("\nRe-instrumentation is a no-op (idempotent) ✓");
}
