//! Robustness sweep: seed-generated synthetic architectures must flow
//! through the entire pipeline (engine → profiler → aggregation → modeling →
//! analysis) without panics, degenerate models, or invalid traces.

use extradeep::prelude::*;
use extradeep::rank_by_growth;
use extradeep_sim::Architecture;
use extradeep_trace::validate_config;
use proptest::prelude::*;

fn run_synthetic(seed: u64) -> Result<(), TestCaseError> {
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 8, 16, 32]);
    spec.benchmark.architecture = Architecture::synthetic(seed);
    spec.benchmark.name = format!("synthetic-{seed}");
    spec.repetitions = 1;
    spec.profiler.max_recorded_ranks = 1;

    let profiles = spec.run();
    for p in &profiles.profiles {
        let issues = validate_config(p);
        prop_assert!(issues.is_empty(), "seed {seed}: {issues:?}");
    }

    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default())
        .map_err(|e| TestCaseError::fail(format!("seed {seed}: {e}")))?;

    // The epoch model is finite and positive everywhere probed.
    for x in [2.0, 16.0, 64.0, 256.0] {
        let p = models.app.epoch.predict_at(x);
        prop_assert!(p.is_finite() && p > 0.0, "seed {seed}: T({x}) = {p}");
    }
    // Growth ranking covers every kernel model without panicking.
    let ranking = rank_by_growth(&models, 64.0);
    prop_assert_eq!(ranking.len(), models.kernels.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn arbitrary_architectures_survive_the_pipeline(seed in 0u64..10_000) {
        run_synthetic(seed)?;
    }
}

#[test]
fn synthetic_architectures_are_deterministic_and_varied() {
    let a = Architecture::synthetic(7);
    let b = Architecture::synthetic(7);
    assert_eq!(a, b, "same seed, same architecture");
    let c = Architecture::synthetic(8);
    assert_ne!(a, c, "different seeds should differ");
    assert!(a.params() > 0);
    assert!(a.forward_flops_per_sample() > 0);
}
