//! Multi-parameter modeling across the full pipeline: a ranks × batch-size
//! measurement grid `P(x1, x2)` (paper §2.3), modeled with Extra-P's sparse
//! multi-parameter scheme.

use extradeep::prelude::*;

fn grid_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 8, 16, 32]);
    spec.batch_sizes = vec![32, 64, 128, 256, 512];
    spec.repetitions = 2;
    spec.profiler.max_recorded_ranks = 1;
    spec
}

#[test]
fn grid_produces_two_parameter_configs() {
    let profiles = grid_spec().run();
    assert_eq!(profiles.configs().len(), 25);
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    assert_eq!(agg.parameters, vec!["ranks", "batch"]);
    assert!(agg.configs.iter().all(|c| c.config.coordinate().len() == 2));
}

#[test]
fn epoch_model_over_ranks_and_batch() {
    let profiles = grid_spec().run();
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default())
        .expect("multi-parameter models");
    assert_eq!(models.app.epoch.parameters, vec!["ranks", "batch"]);

    // Weak scaling: epoch time grows with ranks at fixed batch...
    let t_small = models.app.epoch.predict(&[2.0, 256.0]);
    let t_large = models.app.epoch.predict(&[32.0, 256.0]);
    assert!(
        t_large > t_small,
        "epoch time must grow with ranks: {t_small} -> {t_large}"
    );

    // ...and all predictions on the measured grid are close to measurement.
    let data = agg.app_dataset(MetricKind::Time, None);
    for m in &data.measurements {
        let err = models
            .app
            .epoch
            .percentage_error_at(&m.coordinate, m.median());
        assert!(err < 25.0, "grid fit error {err:.1}% at {:?}", m.coordinate);
    }
}

#[test]
fn batch_size_affects_steps_and_step_cost_oppositely() {
    // Fewer, more expensive steps with larger batches: the per-epoch compute
    // should be roughly batch-independent, so the epoch model must not grow
    // steeply in the batch dimension.
    let profiles = grid_spec().run();
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap();
    let t_b64 = models.app.epoch.predict(&[8.0, 64.0]);
    let t_b512 = models.app.epoch.predict(&[8.0, 512.0]);
    let ratio = t_b512 / t_b64;
    assert!(
        (0.2..5.0).contains(&ratio),
        "epoch time across batch sizes should stay the same order: ratio {ratio}"
    );
}

#[test]
fn kernel_models_exist_on_the_grid() {
    let profiles = grid_spec().run();
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap();
    assert!(
        models.kernels.len() > 30,
        "kernel population on the grid: {}",
        models.kernels.len()
    );
    // The allreduce model depends on ranks but barely on batch.
    let allreduce = models
        .kernels
        .iter()
        .find(|(id, _)| id.name == "MPI_Allreduce")
        .map(|(_, m)| m)
        .expect("allreduce model");
    let by_ranks = allreduce.predict(&[32.0, 256.0]) / allreduce.predict(&[2.0, 256.0]);
    assert!(by_ranks > 1.5, "allreduce must grow with ranks: {by_ranks}");
}
