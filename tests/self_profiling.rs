//! End-to-end self-profiling: the pipeline profiles itself, re-emits its own
//! spans as an extradeep trace, and the unmodified aggregation + modeling
//! stages fit scaling models *of the pipeline*.
//!
//! The workload is deliberately deterministic in span count: at work scale
//! `w` the hypothesis search runs exactly `w` times, so the `model.search`
//! kernel's visits metric must come out exactly linear in `w` — a ground
//! truth the fitted model is checked against.

use extradeep::{self_profile_experiment, SELF_PARAMETER};
use extradeep_agg::{aggregate_experiment, AggregationOptions, KernelId};
use extradeep_model::{ExperimentData, ModelerOptions, SearchEngine};
use extradeep_trace::{ApiDomain, MetricKind};
use std::sync::Mutex;

/// Serializes tests that flip the global obs flag.
static LOCK: Mutex<()> = Mutex::new(());

fn workload_data() -> ExperimentData {
    let f = |x: f64| 3.0 + 0.5 * x * x.log2();
    let pts: Vec<(f64, f64)> = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
        .iter()
        .map(|&x| (x, f(x)))
        .collect();
    ExperimentData::univariate("p", &pts)
}

/// Runs the hypothesis search `w` times under self-profiling and returns the
/// drained snapshot.
fn profiled_run(w: usize) -> extradeep_obs::Snapshot {
    extradeep_obs::reset();
    extradeep_obs::set_enabled(true);
    let engine = SearchEngine::new(ModelerOptions::default());
    let data = workload_data();
    for _ in 0..w {
        engine.model(&data).unwrap();
    }
    extradeep_obs::set_enabled(false);
    extradeep_obs::drain()
}

#[test]
fn pipeline_models_its_own_scaling() {
    let _l = LOCK.lock().unwrap();

    // One profiled run per work scale.
    let scales = [2usize, 4, 6, 8, 10];
    let runs: Vec<(f64, extradeep_obs::Snapshot)> = scales
        .iter()
        .map(|&w| (w as f64, profiled_run(w)))
        .collect();

    // Snapshot → trace → aggregate, all through the ordinary stack.
    let exp = self_profile_experiment(&runs);
    assert_eq!(exp.len(), scales.len());
    let agg = aggregate_experiment(&exp, &AggregationOptions::default());
    assert_eq!(agg.parameters, vec![SELF_PARAMETER.to_string()]);

    let search = KernelId {
        name: "model.search".to_string(),
        domain: ApiDomain::Nvtx,
    };
    assert!(
        agg.modelable_kernels(scales.len()).contains(&search),
        "the search span must appear in every config"
    );

    // Visits ground truth: exactly w searches per run → a linear model.
    let visits = agg.kernel_dataset(&search, MetricKind::Visits);
    for (m, &w) in visits.measurements.iter().zip(scales.iter()) {
        assert_eq!(m.values, vec![w as f64], "raw visit counts must be exact");
    }
    let engine = SearchEngine::new(ModelerOptions::default());
    let visits_model = engine.model(&visits).unwrap();
    for probe in [3.0, 12.0, 20.0] {
        let predicted = visits_model.predict(&[probe]);
        let rel = (predicted - probe).abs() / probe;
        assert!(
            rel < 0.05,
            "visits model must be ~linear: f({probe}) = {predicted}"
        );
    }

    // Time is noisy wall-clock, so only demand a finite, positive fit.
    let time = agg.kernel_dataset(&search, MetricKind::Time);
    let time_model = engine.model(&time).unwrap();
    for probe in [4.0, 16.0] {
        let predicted = time_model.predict(&[probe]);
        assert!(
            predicted.is_finite() && predicted >= 0.0,
            "time model must stay finite: f({probe}) = {predicted}"
        );
    }

    // The search's own counters ride along as visit-bearing kernels.
    let hypotheses = KernelId {
        name: "model.search.hypotheses".to_string(),
        domain: ApiDomain::Nvtx,
    };
    let hyp = agg.kernel_dataset(&hypotheses, MetricKind::Visits);
    assert_eq!(hyp.measurements.len(), scales.len());
    let per_search = hyp.measurements[0].values[0] / scales[0] as f64;
    assert!(
        per_search >= 1.0,
        "each search must log its hypothesis count"
    );
}
