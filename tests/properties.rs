//! Property-based tests over the core invariants, spanning crates.

use extradeep_agg::{aggregate_repetition, AggregationOptions, KernelId};
use extradeep_instrument::{instrument_source, InstrumentOptions};
use extradeep_model::term::CompoundTerm;
use extradeep_model::{
    model_single_parameter, ExperimentData, Fraction, ModelerOptions, PerformanceFunction,
};
use extradeep_sim::{collective_cost, Collective, SystemConfig};
use extradeep_trace::{
    ApiDomain, ConfigProfile, MeasurementConfig, StepPhase, TraceBuilder, TrainingMeta,
};
use proptest::prelude::*;

fn meta() -> TrainingMeta {
    TrainingMeta {
        batch_size: 64,
        train_samples: 6_400,
        val_samples: 640,
        data_parallel: 2,
        model_parallel: 1,
        cores_per_rank: 8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// OLS recovers exact coefficients of noise-free linear data, for any
    /// positive slope/intercept.
    #[test]
    fn modeler_recovers_linear_functions(a in 0.1f64..100.0, b in 0.01f64..10.0) {
        let xs = [2.0, 4.0, 8.0, 16.0, 32.0];
        let pts: Vec<(f64, f64)> = xs.iter().map(|&x| (x, a + b * x)).collect();
        let data = ExperimentData::univariate("p", &pts);
        let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        let predicted = model.predict_at(64.0);
        let truth = a + b * 64.0;
        prop_assert!((predicted - truth).abs() / truth < 0.02,
            "predicted {predicted} vs {truth} (model {})", model.formatted());
    }

    /// PMNF evaluation is monotone in x for positive coefficients and
    /// non-negative exponents.
    #[test]
    fn pmnf_monotone_for_positive_terms(
        c0 in 0.0f64..100.0,
        c1 in 0.001f64..10.0,
        exp_num in 0i32..3,
        log_exp in 0u32..3,
        x in 2.0f64..1000.0,
    ) {
        prop_assume!(exp_num > 0 || log_exp > 0);
        let f = PerformanceFunction::new(
            c0,
            vec![CompoundTerm::univariate(c1, Fraction::new(exp_num, 1), log_exp)],
        );
        prop_assert!(f.evaluate_at(x * 2.0) >= f.evaluate_at(x));
    }

    /// The median aggregation is invariant under rank relabeling/reordering.
    #[test]
    fn aggregation_invariant_under_rank_permutation(durations in proptest::collection::vec(100u64..100_000, 3..6)) {
        let build = |order: &[u64]| -> ConfigProfile {
            let mut cp = ConfigProfile::new(MeasurementConfig::ranks(order.len() as u32), 0, meta());
            for (i, &d) in order.iter().enumerate() {
                let mut b = TraceBuilder::new(i as u32);
                b.begin_epoch(0);
                for step in 0..3 {
                    b.begin_step(0, step, StepPhase::Training);
                    b.emit("k", ApiDomain::CudaKernel, d + step as u64);
                    b.end_step();
                }
                b.end_epoch();
                cp.ranks.push(b.finish());
            }
            cp
        };
        let forward = build(&durations);
        let mut reversed_order = durations.clone();
        reversed_order.reverse();
        let reversed = build(&reversed_order);
        let opts = AggregationOptions { warmup_epochs: 0 };
        let a = aggregate_repetition(&forward, &opts);
        let b = aggregate_repetition(&reversed, &opts);
        let id = KernelId { name: "k".into(), domain: ApiDomain::CudaKernel };
        prop_assert_eq!(a[&id], b[&id]);
    }

    /// Collective costs are monotone in payload size and participant count.
    #[test]
    fn collective_costs_monotone(bytes in 1u64..(1 << 28), p in 2u32..128) {
        let sys = SystemConfig::deep();
        let c1 = collective_cost(&sys, Collective::Allreduce, bytes, p);
        let c2 = collective_cost(&sys, Collective::Allreduce, bytes * 2, p);
        prop_assert!(c2.seconds >= c1.seconds);
        prop_assert!(c2.wire_bytes >= c1.wire_bytes);
        let c3 = collective_cost(&sys, Collective::Allreduce, bytes, p * 2);
        prop_assert!(c3.wire_bytes >= c1.wire_bytes);
    }

    /// The instrumenter is idempotent on arbitrary simple function sources.
    #[test]
    fn instrumenter_idempotent(
        names in proptest::collection::vec("[a-z_][a-z0-9_]{0,10}", 1..5),
    ) {
        let mut src = String::new();
        for n in &names {
            src.push_str(&format!("def {n}(x):\n    return x\n\n"));
        }
        let opts = InstrumentOptions::default();
        let once = instrument_source(&src, &opts);
        let twice = instrument_source(&once.source, &opts);
        prop_assert_eq!(once.source, twice.source);
    }

    /// Training-step counts follow Eq. 2 for any valid configuration.
    #[test]
    fn step_counts_follow_eq2(
        samples in 1_000u64..1_000_000,
        batch in 1u64..1024,
        g in 1u32..256,
    ) {
        let m = TrainingMeta {
            batch_size: batch,
            train_samples: samples,
            val_samples: 0,
            data_parallel: g,
            model_parallel: 1,
            cores_per_rank: 1,
        };
        // Eq. 2, clamped to >= 1: a non-empty shard always runs at least one
        // (partial) step per epoch.
        let expected = (((samples as f64 / g as f64) / batch as f64).floor() as u64).max(1);
        prop_assert_eq!(m.training_steps_per_epoch(), expected);
    }

    /// SMAPE is symmetric and bounded by 200.
    #[test]
    fn smape_symmetric_bounded(a in 0.001f64..1e6, b in 0.001f64..1e6) {
        let s1 = extradeep_model::metrics::smape(&[a], &[b]);
        let s2 = extradeep_model::metrics::smape(&[b], &[a]);
        prop_assert!((s1 - s2).abs() < 1e-9);
        prop_assert!((0.0..=200.0).contains(&s1));
    }

    /// Fractions order consistently with their float values.
    #[test]
    fn fraction_order_matches_floats(n1 in -12i32..12, d1 in 1i32..12, n2 in -12i32..12, d2 in 1i32..12) {
        let f1 = Fraction::new(n1, d1);
        let f2 = Fraction::new(n2, d2);
        let by_frac = f1.cmp(&f2);
        let by_float = f1.as_f64().partial_cmp(&f2.as_f64()).unwrap();
        prop_assert_eq!(by_frac, by_float);
    }
}
