//! Failure-injection tests: the pipeline must degrade gracefully when fed
//! incomplete or malformed measurement data.

use extradeep_agg::{aggregate_experiment, AggregationOptions, KernelId};
use extradeep_model::{model_single_parameter, ModelerOptions, ModelingError};
use extradeep_sim::{ExperimentSpec, ProfilerOptions};
use extradeep_trace::{
    validate_rank, ApiDomain, ConfigProfile, MeasurementConfig, MetricKind, RankProfile, StepPhase,
    TraceBuilder, TraceIssue, TrainingMeta,
};

fn meta() -> TrainingMeta {
    TrainingMeta {
        batch_size: 128,
        train_samples: 12_800,
        val_samples: 1_280,
        data_parallel: 4,
        model_parallel: 1,
        cores_per_rank: 8,
    }
}

fn marked_rank(rank: u32, kernel_ns: u64) -> RankProfile {
    let mut b = TraceBuilder::new(rank);
    b.begin_epoch(0);
    for step in 0..3 {
        b.begin_step(0, step, StepPhase::Training);
        b.emit("k", ApiDomain::CudaKernel, kernel_ns);
        b.end_step();
    }
    b.end_epoch();
    b.finish()
}

#[test]
fn dropped_ranks_still_aggregate() {
    // A 4-rank configuration where 2 ranks' profiles were lost: medians are
    // computed over the surviving ranks.
    let mut exp = extradeep_trace::ExperimentProfiles::new();
    for &(ranks, lost) in &[(4u32, 2usize), (8, 0), (16, 1), (32, 3), (64, 2)] {
        let mut cp = ConfigProfile::new(MeasurementConfig::ranks(ranks), 0, meta());
        let surviving = 4usize.saturating_sub(lost).max(1);
        for r in 0..surviving {
            cp.ranks.push(marked_rank(r as u32, 1_000 * ranks as u64));
        }
        exp.push(cp);
    }
    let agg = aggregate_experiment(&exp, &AggregationOptions { warmup_epochs: 0 });
    let id = KernelId {
        name: "k".into(),
        domain: ApiDomain::CudaKernel,
    };
    let data = agg.kernel_dataset(&id, MetricKind::Time);
    assert_eq!(data.len(), 5);
    assert!(data.measurements.iter().all(|m| m.values[0] > 0.0));
}

#[test]
fn profile_without_step_marks_yields_outside_only_aggregates() {
    // A trace from a tool that lost the NVTX marks: all events land outside
    // steps and surface through the per-epoch "outside" channel.
    let mut cp = ConfigProfile::new(MeasurementConfig::ranks(2), 0, meta());
    let mut b = TraceBuilder::new(0);
    b.begin_epoch(0);
    b.emit("k", ApiDomain::CudaKernel, 5_000);
    b.end_epoch();
    cp.ranks.push(b.finish());
    let mut exp = extradeep_trace::ExperimentProfiles::new();
    exp.push(cp);
    let agg = aggregate_experiment(&exp, &AggregationOptions { warmup_epochs: 0 });
    let k = &agg.configs[0].kernels[&KernelId {
        name: "k".into(),
        domain: ApiDomain::CudaKernel,
    }];
    assert_eq!(k.reps[0].time.train, 0.0);
    assert!((k.reps[0].time.outside - 5_000e-9).abs() < 1e-15);
}

#[test]
fn kernel_below_config_threshold_gets_no_model() {
    // Simulated experiment plus a kernel injected into just one config.
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
    spec.repetitions = 1;
    spec.profiler = ProfilerOptions {
        max_recorded_ranks: 1,
        ..Default::default()
    };
    let mut profiles = spec.run();
    profiles.profiles[0].ranks[0]
        .events
        .push(extradeep_trace::Event::new(
            "one_hit_wonder",
            ApiDomain::CudaKernel,
            10,
            100,
        ));
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    let modelable = agg.modelable_kernels(5);
    assert!(
        !modelable.iter().any(|k| k.name == "one_hit_wonder"),
        "a kernel in one config must not be modeled (paper §2.2 step 4)"
    );

    // Its dataset exists but the modeler refuses it.
    let id = KernelId {
        name: "one_hit_wonder".into(),
        domain: ApiDomain::CudaKernel,
    };
    let data = agg.kernel_dataset(&id, MetricKind::Time);
    assert!(matches!(
        model_single_parameter(&data, &ModelerOptions::default()),
        Err(ModelingError::InsufficientPoints { .. })
    ));
}

#[test]
fn zero_duration_and_orphan_steps_are_reported_not_fatal() {
    let mut p = RankProfile::new(0);
    p.events
        .push(extradeep_trace::Event::new("ghost", ApiDomain::Os, 0, 0));
    p.step_marks.push(extradeep_trace::StepMark::new(
        7,
        0,
        StepPhase::Training,
        0,
        10,
    ));
    p.epoch_marks
        .push(extradeep_trace::EpochMark::new(0, 0, 100));
    let issues = validate_rank(&p);
    assert!(issues
        .iter()
        .any(|i| matches!(i, TraceIssue::ZeroDurationEvent { .. })));
    assert!(issues
        .iter()
        .any(|i| matches!(i, TraceIssue::StepWithoutEpoch { epoch: 7, .. })));

    // Aggregation still works on the same data.
    let mut cp = ConfigProfile::new(MeasurementConfig::ranks(1), 0, meta());
    cp.ranks.push(p);
    let mut exp = extradeep_trace::ExperimentProfiles::new();
    exp.push(cp);
    let agg = aggregate_experiment(&exp, &AggregationOptions { warmup_epochs: 0 });
    assert_eq!(agg.configs.len(), 1);
}

#[test]
fn uneven_repetition_counts_are_tolerated() {
    // One config measured 3 times, another only once.
    let mut exp = extradeep_trace::ExperimentProfiles::new();
    for &(ranks, reps) in &[(2u32, 3u32), (4, 1), (8, 3), (16, 2), (32, 3)] {
        for rep in 0..reps {
            let mut cp = ConfigProfile::new(MeasurementConfig::ranks(ranks), rep, meta());
            cp.ranks
                .push(marked_rank(0, 1_000 * ranks as u64 + rep as u64));
            exp.push(cp);
        }
    }
    let agg = aggregate_experiment(&exp, &AggregationOptions { warmup_epochs: 0 });
    let id = KernelId {
        name: "k".into(),
        domain: ApiDomain::CudaKernel,
    };
    let data = agg.kernel_dataset(&id, MetricKind::Time);
    let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
    assert!(model.predict_at(64.0) > 0.0);
}

#[test]
fn constant_metric_data_produces_a_constant_model_not_an_error() {
    let pts: Vec<(f64, f64)> = [2.0, 4.0, 8.0, 16.0, 32.0]
        .iter()
        .map(|&x| (x, 7.25))
        .collect();
    let data = extradeep_model::ExperimentData::univariate("p", &pts);
    let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
    assert!(model.function.is_constant());
}
