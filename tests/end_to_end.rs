//! End-to-end pipeline test: simulate → serialize → reload → aggregate →
//! model → analyze, across crate boundaries — the full Fig. 1 workflow.

use extradeep::prelude::*;
use extradeep::{efficiency_series, find_cost_effective, rank_by_growth, speedup_series};
use extradeep_trace::json;

fn run_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
    spec.repetitions = 3;
    spec.profiler.max_recorded_ranks = 2;
    spec
}

#[test]
fn full_pipeline_from_profiles_to_answers() {
    // 1. Simulate + profile.
    let profiles = run_spec().run();
    assert_eq!(profiles.len(), 15);

    // 2. Round-trip through the on-disk trace format (what a real deployment
    //    would do between the profiling and analysis machines).
    let json_str = json::to_json(&profiles).expect("serialize");
    let reloaded = json::from_json(&json_str).expect("deserialize");
    assert_eq!(profiles, reloaded);

    // 3. Preprocess.
    let agg = aggregate_experiment(&reloaded, &AggregationOptions::default());
    assert_eq!(agg.configs.len(), 5);
    let modelable = agg.modelable_kernels(5);
    assert!(
        modelable.len() > 40,
        "expected a rich kernel population, got {}",
        modelable.len()
    );

    // 4. Model.
    let models =
        build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).expect("models");
    assert_eq!(models.kernels.len(), modelable.len() - models.failed.len());

    // 5. Analyze: every §3 analysis must be computable from the models.
    let xs = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    let speedup = speedup_series(&models.app.epoch, &xs);
    assert_eq!(speedup[0].1, 0.0);
    let eff = efficiency_series(&models.app.epoch, &xs);
    assert_eq!(eff[0].1, 100.0);
    let ranking = rank_by_growth(&models, 64.0);
    assert_eq!(ranking.len(), models.kernels.len());
    let cost = CostModel::new(8);
    let search = find_cost_effective(
        &models.app.epoch,
        &cost,
        &xs,
        Constraints::default(),
        ScalingMode::Weak,
    );
    assert_eq!(search.best.unwrap().ranks, 2.0);
}

#[test]
fn profiles_validate_cleanly() {
    let profiles = run_spec().run();
    for p in &profiles.profiles {
        let issues = extradeep_trace::validate_config(p);
        assert!(issues.is_empty(), "{}: {issues:?}", p.config.id());
    }
}

#[test]
fn weak_scaling_epoch_model_grows() {
    let agg = aggregate_experiment(&run_spec().run(), &AggregationOptions::default());
    let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap();
    let t2 = models.app.epoch.predict_at(2.0);
    let t64 = models.app.epoch.predict_at(64.0);
    assert!(
        t64 > t2 * 1.2,
        "weak-scaling epoch time should grow visibly: {t2} -> {t64}"
    );
}

#[test]
fn strong_scaling_epoch_model_shrinks() {
    let mut spec = run_spec();
    spec.scaling = ScalingMode::Strong;
    let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
    let models =
        build_model_set(&agg, MetricKind::Time, &ModelSetOptions::strong_scaling()).unwrap();
    let t2 = models.app.epoch.predict_at(2.0);
    let t32 = models.app.epoch.predict_at(32.0);
    assert!(
        t32 < t2,
        "strong-scaling epoch time should fall: {t2} -> {t32}"
    );
}

#[test]
fn all_three_metrics_are_modelable() {
    let agg = aggregate_experiment(&run_spec().run(), &AggregationOptions::default());
    for metric in [MetricKind::Time, MetricKind::Visits, MetricKind::Bytes] {
        let models = build_model_set(&agg, metric, &ModelSetOptions::default())
            .unwrap_or_else(|e| panic!("{metric:?}: {e}"));
        assert!(!models.kernels.is_empty(), "{metric:?} produced no models");
    }
}

#[test]
fn hybrid_strategies_flow_through_the_pipeline() {
    for strategy in [
        ParallelStrategy::TensorParallel { group: 4 },
        ParallelStrategy::PipelineParallel {
            stages: 4,
            microbatches: 8,
        },
    ] {
        let mut spec = run_spec();
        spec.system = SystemConfig::jureca();
        spec.strategy = strategy;
        spec.rank_counts = vec![8, 16, 24, 32, 40];
        let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
        let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default())
            .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
        assert!(
            models.app.communication.predict_at(40.0) > 0.0,
            "{strategy:?} must show communication"
        );
    }
}
