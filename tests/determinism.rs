//! Double-run determinism: two identical `extradeep pipeline` invocations
//! must produce byte-identical JSON artifacts.
//!
//! This is the enforcement test behind the `nondeterministic-iteration`
//! lint: every map whose contents reach a serialized artifact is a BTreeMap
//! (or explicitly sorted), and the simulator's noise is a seeded stream, so
//! nothing about a run depends on process-level randomness like hash seeds.

use extradeep::cli::run;

fn argv(cmd: &str) -> Vec<String> {
    cmd.split_whitespace().map(str::to_string).collect()
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "extradeep-determinism-{}-{name}",
            std::process::id()
        ))
        .to_string_lossy()
        .into_owned()
}

fn read(path: &str) -> Vec<u8> {
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    std::fs::remove_file(path).ok();
    bytes
}

#[test]
fn pipeline_profile_artifacts_are_byte_identical_across_runs() {
    let (a, b) = (tmp("profiles-a.json"), tmp("profiles-b.json"));
    for out in [&a, &b] {
        run(&argv(&format!(
            "pipeline --ranks 2,4,6,8 --reps 2 --benchmark cifar10 --out {out} --no-doctor"
        )))
        .expect("pipeline run succeeds");
    }
    let (bytes_a, bytes_b) = (read(&a), read(&b));
    assert!(!bytes_a.is_empty() || bytes_b.is_empty());
    assert_eq!(
        bytes_a, bytes_b,
        "two identical pipeline runs wrote different profile artifacts"
    );
}

#[test]
fn saved_model_artifacts_are_byte_identical_across_runs() {
    // Simulate once, then model the same profile file twice: the model-set
    // construction (BasisCache, kernel map iteration, serialization) must be
    // deterministic given identical input bytes.
    let profiles = tmp("profiles-model.json");
    run(&argv(&format!(
        "simulate --out {profiles} --ranks 2,4,6,8 --reps 2 --benchmark cifar10"
    )))
    .expect("simulate succeeds");

    let (ma, mb) = (tmp("models-a.json"), tmp("models-b.json"));
    for out in [&ma, &mb] {
        run(&argv(&format!("model --in {profiles} --save-models {out}")))
            .expect("model run succeeds");
    }
    std::fs::remove_file(&profiles).ok();
    let (bytes_a, bytes_b) = (read(&ma), read(&mb));
    assert_eq!(
        bytes_a, bytes_b,
        "two identical model runs wrote different model artifacts"
    );
}
