//! Chaos integration test: fuzzed fault plans end-to-end through the full
//! pipeline. For every seed, the pipeline must (a) never panic, (b) emit a
//! repair report describing what it salvaged, and (c) either fit an
//! epoch-runtime model within the chaos MPE bound of the clean-input fit or
//! degrade to a typed `ModelingError` — never a silently wrecked model.

use extradeep::chaos::{clean_baseline, run_chaos_case};
use extradeep_sim::FaultPlan;
use extradeep_trace::repair_experiment;

/// The integration seed matrix: small (CI sweeps a larger one through the
/// `chaos` binary) but covering structurally different fuzzed plans.
const SEEDS: [u64; 6] = [0, 1, 2, 5, 11, 42];

#[test]
fn fuzzed_fault_plans_survive_the_pipeline() {
    let baseline = clean_baseline().expect("clean baseline must fit");
    assert!(
        baseline.clean_mpe.is_finite(),
        "clean MPE must be a real number"
    );
    for &seed in &SEEDS {
        let case = run_chaos_case(&baseline, seed);
        assert!(!case.panicked, "seed {seed}: pipeline panicked");
        assert!(
            case.repair.is_some(),
            "seed {seed}: no repair report emitted"
        );
        match (case.repaired_mpe, &case.modeling_error) {
            (Some(mpe), _) => assert!(
                mpe <= case.mpe_bound,
                "seed {seed}: repaired MPE {mpe:.2}% over bound {:.2}% \
                 (clean {:.2}%, faults: {:?})",
                case.mpe_bound,
                case.clean_mpe,
                case.faults
            ),
            (None, Some(_)) => {} // typed degradation: accepted
            (None, None) => panic!("seed {seed}: neither a model nor a typed error"),
        }
    }
}

#[test]
fn repair_makes_faulted_profiles_validate_clean() {
    // Structural faults only (no rank loss): after repair, every
    // configuration must pass validation again.
    let baseline = clean_baseline().expect("clean baseline");
    let plan = FaultPlan::parse(
        "seed=7,shuffle-steps=1.0,dup-step-mark=0.3,drop-epoch-marks=0.4,zero-dur=0.02",
    )
    .unwrap();
    let mut profiles = baseline.profiles.clone();
    plan.apply(&mut profiles);
    let report = repair_experiment(&mut profiles);
    assert!(
        report.counts.total_repairs() > 0,
        "the plan should have forced some repairs"
    );
    for p in &profiles.profiles {
        let issues = extradeep_trace::validate_config(p);
        assert!(
            issues.is_empty(),
            "{} rep {} still invalid after repair: {issues:?}",
            p.config.id(),
            p.repetition
        );
    }
}

#[test]
fn observability_counters_track_injection_and_repair() {
    extradeep_obs::set_enabled(true);
    extradeep_obs::drain();
    let baseline = clean_baseline().expect("clean baseline");
    let plan = FaultPlan::parse("seed=13,drop-rank=0.5,drop-epoch-marks=0.6").unwrap();
    let mut profiles = baseline.profiles.clone();
    let summary = plan.apply(&mut profiles);
    assert!(summary.total() > 0, "plan must inject something");
    let report = repair_experiment(&mut profiles);
    assert!(report.counts.ranks_quarantined > 0 || report.counts.marks_reconstructed > 0);
    let recording = extradeep_obs::drain();
    extradeep_obs::set_enabled(false);
    let counter = |name: &str| -> u64 {
        recording
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    // `>=` not `==`: the obs registry is process-global and sibling tests
    // in this binary run concurrently, injecting and repairing too.
    assert!(counter("faults.injected") >= summary.total());
    assert!(counter("repair.ranks_quarantined") >= report.counts.ranks_quarantined as u64);
    assert!(counter("repair.marks_reconstructed") >= report.counts.marks_reconstructed as u64);
}
