//! Accuracy-band assertions: the reproduced pipeline must land in the
//! paper's qualitative bands — high model accuracy at the fit points,
//! bounded extrapolation error, communication as the growth bottleneck, and
//! the ~95% profiling-time reduction of the efficient sampling strategy.

use extradeep::prelude::*;
use extradeep_baselines::compare_overhead;
use extradeep_sim::{SamplingStrategy, TrainingJob};

fn case_plan() -> ExperimentPlan {
    let mut spec = ExperimentSpec::case_study(vec![]);
    spec.repetitions = 3;
    spec.profiler.max_recorded_ranks = 2;
    ExperimentPlan {
        spec,
        modeling_points: vec![2, 4, 6, 8, 10],
        evaluation_points: vec![16, 32, 64],
    }
}

#[test]
fn model_accuracy_is_high_at_fit_points() {
    let outcome = case_plan().execute(MetricKind::Time).unwrap();
    let mpe = outcome.epoch_report.model_accuracy_mpe();
    // Paper: MPE between 0.3% and 1.4% at the modeling points. Allow slack
    // for the simulated noise climate.
    assert!(mpe < 5.0, "model accuracy MPE {mpe}% (paper: <1.5%)");
}

#[test]
fn predictive_power_degrades_gracefully_with_scale() {
    let outcome = case_plan().execute(MetricKind::Time).unwrap();
    let errors = &outcome.epoch_report.evaluation_errors;
    // Paper: prediction error grows with extrapolation distance, reaching
    // 15-29% at 64 nodes for the case study; "prediction errors for 64
    // nodes between 15-20% are a desirable outcome".
    let at64 = errors
        .iter()
        .find(|e| e.coordinate[0] == 64.0)
        .expect("64-rank evaluation point");
    assert!(
        at64.percent_error < 35.0,
        "error at 64 ranks {}%",
        at64.percent_error
    );
}

#[test]
fn communication_is_the_scaling_bottleneck() {
    let outcome = case_plan().execute(MetricKind::Time).unwrap();
    let comm = &outcome.models.app.communication;
    let growth = comm.predict_at(64.0) / comm.predict_at(2.0).max(1e-9);
    // Paper: comm per epoch grows from 34.41 s (2 nodes) to 296.57 s
    // (64 nodes) — roughly 9x. Require clearly superconstant growth.
    assert!(
        growth > 2.5,
        "communication grew only {growth:.2}x from 2 to 64 ranks"
    );
    // And faster than computation.
    let comp = &outcome.models.app.computation;
    let comp_growth = comp.predict_at(64.0) / comp.predict_at(2.0).max(1e-9);
    assert!(
        growth > comp_growth,
        "comm {growth:.2}x vs comp {comp_growth:.2}x"
    );
}

#[test]
fn run_to_run_variation_grows_with_scale() {
    // Fig. 3: "run-to-run variation increases the larger x1". With few
    // repetitions the per-config range is itself noisy, so compare averages
    // over several small vs. several large configurations at 5 repetitions.
    let mut plan = case_plan();
    plan.spec.repetitions = 5;
    plan.evaluation_points = vec![40, 48, 56, 64];
    let (modeling, evaluation) = plan.aggregate();
    let mean_variation = |agg: &extradeep_agg::AggregatedExperiment| {
        let data = agg.app_dataset(MetricKind::Time, None);
        data.measurements
            .iter()
            .map(|m| m.run_to_run_variation_percent())
            .sum::<f64>()
            / data.len() as f64
    };
    let small = mean_variation(&modeling); // 2..10 ranks
    let large = mean_variation(&evaluation); // 40..64 ranks
    assert!(
        large > small,
        "variation should grow with scale: {small:.2}% -> {large:.2}%"
    );
}

#[test]
fn efficient_sampling_reduction_is_near_the_papers_949_percent() {
    let mut reductions = Vec::new();
    for benchmark in Benchmark::all() {
        let job = TrainingJob {
            system: SystemConfig::deep(),
            benchmark,
            strategy: ParallelStrategy::DataParallel,
            scaling: ScalingMode::Weak,
            sync: SyncMode::Bsp,
            ranks: 64,
        };
        let cmp = compare_overhead(&job, SamplingStrategy::paper_default());
        reductions.push(cmp.profiling_reduction_percent());
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(
        (85.0..100.0).contains(&avg),
        "average profiling reduction {avg:.1}% (paper: ~94.9%)"
    );
    // The asymmetry the paper reports: long benchmarks benefit most.
    let imagenet = reductions[2];
    let imdb = reductions[3];
    assert!(
        imagenet > imdb,
        "ImageNet {imagenet:.1}% <= IMDB {imdb:.1}%"
    );
}

#[test]
fn jureca_models_are_somewhat_less_accurate_than_deep() {
    // Fig. 6: JURECA (NCCL, 4 GPUs/node, noisier) extrapolates slightly
    // worse than DEEP. Compare the MPE over shared evaluation node counts.
    let deep = case_plan().execute(MetricKind::Time).unwrap();

    let mut spec = ExperimentSpec::case_study(vec![]);
    spec.system = SystemConfig::jureca();
    spec.repetitions = 3;
    spec.profiler.max_recorded_ranks = 2;
    let jureca_plan = ExperimentPlan {
        spec,
        modeling_points: vec![8, 16, 24, 32, 40],
        evaluation_points: vec![64, 128, 256],
    };
    let jureca = jureca_plan.execute(MetricKind::Time).unwrap();

    // Not a strict per-point comparison (axes differ); both must simply be
    // finite and the JURECA far-point error nonzero.
    let deep_far = deep.epoch_report.evaluation_errors.last().unwrap();
    let jureca_far = jureca.epoch_report.evaluation_errors.last().unwrap();
    assert!(deep_far.percent_error.is_finite());
    assert!(jureca_far.percent_error.is_finite());
    assert!(jureca_far.percent_error > 0.0);
}

#[test]
fn visits_are_easier_to_predict_than_time() {
    // Table 2's key finding: "for all model types, the number of visits is
    // generally easier to predict than the runtime".
    let plan = case_plan();
    let (modeling, evaluation) = plan.aggregate();
    let mpe_for = |metric: MetricKind| -> f64 {
        let models = extradeep::build_model_set(&modeling, metric, &Default::default()).unwrap();
        let mut errors = Vec::new();
        for (id, model) in &models.kernels {
            let data = evaluation.kernel_dataset(id, metric);
            for e in extradeep::point_errors(model, &data) {
                if e.measured != 0.0 {
                    errors.push(e.percent_error);
                }
            }
        }
        errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        errors[errors.len() / 2]
    };
    let time_mpe = mpe_for(MetricKind::Time);
    let visits_mpe = mpe_for(MetricKind::Visits);
    assert!(
        visits_mpe <= time_mpe,
        "visits MPE {visits_mpe:.2}% should not exceed time MPE {time_mpe:.2}%"
    );
}
