//! End-to-end change-point detection: the paper's §4.3 caveat that
//! "communication algorithms ... might change depending on the application
//! scale" — simulate a cluster whose MPI library switches collective
//! algorithms beyond 16 nodes, measure across the switch, and verify the
//! segmented modeler localizes it.

use extradeep::prelude::*;
use extradeep_agg::AppCategory;
use extradeep_model::{detect_change_point, SegmentationOptions};

fn spec_with_switch(switch: Option<u32>) -> ExperimentSpec {
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 8, 12, 16, 24, 32, 48, 64]);
    spec.system.interconnect.algorithm_switch_nodes = switch;
    spec.repetitions = 3;
    spec.profiler.max_recorded_ranks = 2;
    spec
}

fn comm_dataset(spec: &ExperimentSpec) -> extradeep_model::ExperimentData {
    let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
    agg.app_dataset(MetricKind::Time, Some(AppCategory::Communication))
}

#[test]
fn detects_the_simulated_algorithm_switch() {
    let data = comm_dataset(&spec_with_switch(Some(16)));
    let seg = detect_change_point(&data, &SegmentationOptions::default())
        .expect("segmentation runs")
        .expect("the algorithm switch must be detected");
    assert!(
        (8.0..=32.0).contains(&seg.split_at),
        "switch localized at {} (injected at 16 nodes)",
        seg.split_at
    );
    assert!(seg.improvement() > 0.6, "improvement {}", seg.improvement());
}

#[test]
fn no_spurious_change_point_without_a_switch() {
    let data = comm_dataset(&spec_with_switch(None));
    let seg = detect_change_point(&data, &SegmentationOptions::default()).unwrap();
    assert!(
        seg.is_none(),
        "spurious change point on a smooth system: {seg:?}"
    );
}

#[test]
fn single_pmnf_model_suffers_across_the_switch() {
    // The motivation for segmentation: one PMNF instance fitted across the
    // behavioral change fits visibly worse than the segmented pair.
    let data = comm_dataset(&spec_with_switch(Some(16)));
    let seg = detect_change_point(&data, &SegmentationOptions::default())
        .unwrap()
        .expect("change point");
    assert!(
        seg.segmented_smape < seg.single_smape,
        "segmented {} vs single {}",
        seg.segmented_smape,
        seg.single_smape
    );
}
