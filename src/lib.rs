//! Workspace-level umbrella crate: hosts the runnable examples under
//! `examples/` and the cross-crate integration tests under `tests/`.
//!
//! The actual library surface lives in the member crates; this crate simply
//! re-exports the facade so examples can `use extradeep_suite as _` cheaply.

pub use extradeep as framework;
